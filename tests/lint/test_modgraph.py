"""Unit tests for the module graph substrate (repro.lint.modgraph)."""

import textwrap

from repro.lint.modgraph import (
    ModuleGraph,
    iter_python_files,
    module_name_for,
)


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestModuleNames:
    def test_package_module_gets_dotted_name(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/sub/__init__.py", "")
        path = write(tmp_path, "pkg/sub/mod.py", "x = 1\n")
        assert module_name_for(path) == "pkg.sub.mod"

    def test_loose_file_maps_to_stem(self, tmp_path):
        path = write(tmp_path, "script.py", "x = 1\n")
        assert module_name_for(path) == "script"

    def test_package_init_names_the_package(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        path = tmp_path / "pkg" / "__init__.py"
        assert module_name_for(path) == "pkg"


class TestImportMap:
    def test_aliases_resolve_through_imports(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            import numpy as np
            from concurrent.futures import ProcessPoolExecutor as Pool
            from repro.core.engines.base import Engine
        """)
        graph = ModuleGraph.build([path])
        module = graph.get("mod")
        assert module.resolve("np.random.default_rng") == \
            "numpy.random.default_rng"
        assert module.resolve("Pool") == \
            "concurrent.futures.ProcessPoolExecutor"
        assert module.resolve("Engine") == "repro.core.engines.base.Engine"

    def test_unimported_names_resolve_to_themselves(self, tmp_path):
        path = write(tmp_path, "mod.py", "pool = object()\n")
        module = ModuleGraph.build([path]).get("mod")
        assert module.resolve("pool.submit") == "pool.submit"


class TestSymbols:
    def test_qualname_at_nested_lines(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            top = 1

            class Screen:
                def measure(self):
                    def inner():
                        return 2
                    return inner()
        """)
        module = ModuleGraph.build([path]).get("mod")
        assert module.qualname_at(1) == "<module>"
        assert module.qualname_at(4) == "Screen.measure"
        assert module.qualname_at(6) == "Screen.measure.inner"

    def test_nested_functions_are_recorded(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            def outer():
                def closure():
                    pass
                return closure
        """)
        module = ModuleGraph.build([path]).get("mod")
        assert module.nested_functions == {"closure"}
        assert "outer" in module.toplevel


class TestGraphBuild:
    def test_syntax_error_becomes_failure_not_crash(self, tmp_path):
        write(tmp_path, "ok.py", "x = 1\n")
        write(tmp_path, "broken.py", "def broken(:\n")
        graph = ModuleGraph.build([tmp_path])
        assert len(graph) == 1
        assert len(graph.failures) == 1
        assert graph.failures[0].path.name == "broken.py"

    def test_iter_python_files_dedups_and_sorts(self, tmp_path):
        a = write(tmp_path, "a.py", "")
        write(tmp_path, "b.py", "")
        files = list(iter_python_files([tmp_path, a]))
        assert [f.name for f in files] == ["a.py", "b.py"]
