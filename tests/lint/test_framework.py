"""Unit tests for the rule registry, suppression, and run driver."""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity
from repro.lint import RULES, registered_rules, rule, run_lint
from repro.lint.framework import (
    allowed_rules,
    baseline_keys,
    lint_pass,
    load_baseline,
    suppressed_by_comment,
    write_baseline,
)
from repro.telemetry import use_telemetry

from .conftest import rules_of


class TestRegistry:
    def test_expected_rule_families_registered(self):
        families = {r.rule_id[:3] for r in registered_rules()}
        assert {"PKL", "AIO", "CAP", "TEL", "RAC", "DET"} <= families

    def test_at_least_five_fleet_passes(self):
        families = {r.rule_id.rstrip("0123456789")
                    for r in registered_rules()}
        assert len(families) >= 5

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("PKL001", Severity.ERROR, "dup")

    def test_pass_for_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            @lint_pass("NOPE001")
            def bogus(module, ctx):
                yield from ()

    def test_every_rule_has_severity_and_summary(self):
        for spec in RULES.values():
            assert isinstance(spec.severity, Severity)
            assert spec.summary


class TestSuppressionParsing:
    def test_single_rule(self):
        assert allowed_rules("x = 1  # lint: allow[PKL001]") == {"PKL001"}

    def test_comma_separated_and_spaces(self):
        assert allowed_rules("# lint: allow[PKL001, AIO]") == \
            {"PKL001", "AIO"}

    def test_legacy_det_marker_maps_to_det_family(self):
        assert allowed_rules("rng = default_rng()  # det: allow") == {"DET"}

    def test_family_prefix_covers_members_only(self):
        assert suppressed_by_comment("# lint: allow[PKL]", "PKL002")
        assert not suppressed_by_comment("# lint: allow[PKL]", "AIO001")
        # A family token must match the full prefix, not a substring.
        assert not suppressed_by_comment("# lint: allow[PK]", "PKL001")

    def test_plain_line_suppresses_nothing(self):
        assert allowed_rules("x = 1  # a normal comment") == set()


class TestRuleSelection:
    def test_select_family(self, lint_source):
        result = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n",
            rules=["DET"],
        )
        assert rules_of(result) == ["DET001"]

    def test_unknown_rule_raises(self, lint_source):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", rules=["BOGUS999"])


class TestRunDriver:
    def test_syntax_error_becomes_lint000_diagnostic(self, lint_source):
        result = lint_source("def broken(:\n")
        assert rules_of(result) == ["LINT000"]
        assert result.failed(strict=False)

    def test_diagnostics_carry_symbol_and_location(self, lint_source):
        result = lint_source(
            "import time\n"
            "class Service:\n"
            "    async def close(self):\n"
            "        time.sleep(1)\n",
        )
        (diag,) = result.diagnostics
        assert diag.element == "Service.close"
        assert diag.location == "fixture_mod.py:4"
        assert diag.subject == "fixture_mod"

    def test_suppressed_findings_are_counted_not_silent(self, lint_source):
        result = lint_source(
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # lint: allow[AIO001]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"AIO001": 1}
        assert result.suppressed_total == 1

    def test_clean_run_passes_strict(self, lint_source):
        result = lint_source("x = 1\n")
        assert not result.failed(strict=True)
        assert result.modules_checked == 1

    def test_telemetry_counters_recorded(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
            "    time.sleep(2)  # lint: allow[AIO]\n",
            encoding="utf-8",
        )
        with use_telemetry() as tele:
            run_lint([path], record_telemetry=True, root=tmp_path)
        assert tele.counters.get("diag_emitted.AIO001") == 1
        assert tele.counters.get("diag_suppressed.AIO001") == 1

    def test_json_schema(self, lint_source):
        result = lint_source(
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n",
        )
        payload = result.to_json()
        assert payload["version"] == 1
        assert payload["modules_checked"] == 1
        (entry,) = payload["diagnostics"]
        assert entry["rule"] == "AIO001"
        assert entry["severity"] == "error"
        assert entry["symbol"] == "f"
        assert entry["location"].endswith("fixture_mod.py:3")


class TestBaseline:
    SOURCE = (
        "import time\n"
        "async def f():\n"
        "    time.sleep(1)\n"
    )

    def test_keys_are_stable_and_line_free(self, lint_source):
        result = lint_source(self.SOURCE)
        (key,) = baseline_keys(result.diagnostics)
        assert key == "fixture_mod:AIO001:f#1"

    def test_round_trip_subtracts_old_findings(self, tmp_path, lint_source):
        result = lint_source(self.SOURCE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result)
        baseline = load_baseline(baseline_path)

        # Same source, shifted down two lines: the key still matches.
        shifted = "# pad\n# pad\n" + self.SOURCE
        path = tmp_path / "fixture_mod.py"
        path.write_text(shifted, encoding="utf-8")
        again = run_lint(
            [path], baseline=baseline, record_telemetry=False,
            root=tmp_path,
        )
        assert again.diagnostics == []
        assert again.baselined == 1
        assert not again.failed(strict=True)

    def test_new_findings_survive_baseline(self, tmp_path, lint_source):
        result = lint_source(self.SOURCE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result)
        baseline = load_baseline(baseline_path)

        grown = self.SOURCE + (
            "async def g():\n"
            "    time.sleep(2)\n"
        )
        path = tmp_path / "fixture_mod.py"
        path.write_text(grown, encoding="utf-8")
        again = run_lint(
            [path], baseline=baseline, record_telemetry=False,
            root=tmp_path,
        )
        assert rules_of(again) == ["AIO001"]
        assert again.diagnostics[0].element == "g"
        assert again.baselined == 1
