"""TEL rule tests: metric names registered, kind-correct, namespaced."""

from .conftest import rules_of

TELE = (
    "from repro.telemetry import get_telemetry\n"
    "tele = get_telemetry()\n"
)


class TestTEL001:
    def test_unregistered_metric(self, lint_source):
        result = lint_source(TELE + "tele.incr('bogus.metric')\n")
        assert rules_of(result) == ["TEL001"]

    def test_unregistered_family_fstring(self, lint_source):
        result = lint_source(
            TELE +
            "def f(stage):\n"
            "    tele.incr(f'bogus.family.{stage}')\n",
        )
        assert rules_of(result) == ["TEL001"]

    def test_registered_counter_is_clean(self, lint_source):
        result = lint_source(TELE + "tele.incr('ragged.packs')\n")
        assert result.diagnostics == []

    def test_registered_family_fstring_is_clean(self, lint_source):
        result = lint_source(
            TELE +
            "def f(rule):\n"
            "    tele.incr(f'diag_emitted.{rule}')\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            TELE + "tele.incr('bogus.metric')  # lint: allow[TEL001]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"TEL001": 1}


class TestTEL002:
    def test_observe_on_counter(self, lint_source):
        result = lint_source(TELE + "tele.observe('ragged.packs', 1.0)\n")
        assert rules_of(result) == ["TEL002"]

    def test_incr_on_histogram(self, lint_source):
        result = lint_source(TELE + "tele.incr('ragged.pad_waste')\n")
        assert rules_of(result) == ["TEL002"]

    def test_observe_on_histogram_is_clean(self, lint_source):
        result = lint_source(
            TELE + "tele.observe('ragged.pad_waste', 0.25)\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            TELE +
            "tele.observe('ragged.packs', 1.0)  # lint: allow[TEL002]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"TEL002": 1}


class TestTEL003:
    def test_malformed_name(self, lint_source):
        result = lint_source(TELE + "tele.incr('Bad.Name')\n")
        assert rules_of(result) == ["TEL003"]

    def test_dynamic_name_without_family_prefix(self, lint_source):
        result = lint_source(
            TELE +
            "def f(name):\n"
            "    tele.incr(f'{name}')\n",
        )
        assert rules_of(result) == ["TEL003"]

    def test_legacy_flat_name_is_grandfathered(self, lint_source):
        result = lint_source(TELE + "tele.incr('cache_hits')\n")
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            TELE + "tele.incr('Bad.Name')  # lint: allow[TEL003]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"TEL003": 1}


class TestReceivers:
    def test_get_telemetry_call_receiver(self, lint_source):
        result = lint_source(
            "from repro.telemetry import get_telemetry\n"
            "get_telemetry().incr('bogus.metric')\n",
        )
        assert rules_of(result) == ["TEL001"]

    def test_self_telemetry_attribute_receiver(self, lint_source):
        result = lint_source(
            "class Svc:\n"
            "    def f(self):\n"
            "        self.telemetry.incr('bogus.metric')\n",
        )
        assert rules_of(result) == ["TEL001"]

    def test_unrelated_incr_receiver_is_clean(self, lint_source):
        result = lint_source(
            "def f(version_counter):\n"
            "    version_counter.incr('whatever')\n",
        )
        assert result.diagnostics == []
