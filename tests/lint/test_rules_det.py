"""DET rule tests, migrated from tests/tools/test_lint_determinism.py.

Same cases as the original standalone lint's suite, now exercised
through the unified analyzer (``run_lint`` with the DET family).
"""

import pytest

from .conftest import rules_of


class TestUnseededGenerators:
    def test_default_rng_no_args(self, lint_source):
        result = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rules_of(result) == ["DET001"]

    def test_default_rng_none(self, lint_source):
        result = lint_source(
            "import numpy as np\nrng = np.random.default_rng(None)\n",
        )
        assert rules_of(result) == ["DET001"]

    def test_imported_default_rng(self, lint_source):
        result = lint_source(
            "from numpy.random import default_rng\nrng = default_rng()\n",
        )
        assert rules_of(result) == ["DET001"]

    def test_seeded_default_rng_is_clean(self, lint_source):
        result = lint_source(
            "import numpy as np\nrng = np.random.default_rng(42)\n",
        )
        assert result.diagnostics == []

    def test_seed_sequence_without_entropy(self, lint_source):
        result = lint_source(
            "import numpy as np\nseq = np.random.SeedSequence()\n",
        )
        assert rules_of(result) == ["DET002"]

    def test_seed_sequence_with_entropy_is_clean(self, lint_source):
        result = lint_source(
            "import numpy as np\nseq = np.random.SeedSequence(7)\n",
        )
        assert result.diagnostics == []


class TestLegacyModuleSamplers:
    @pytest.mark.parametrize("call", [
        "np.random.normal(0, 1, 10)",
        "np.random.rand(4)",
        "np.random.seed(0)",
        "np.random.RandomState(0)",
        "numpy.random.uniform()",
    ])
    def test_legacy_call_flagged(self, lint_source, call):
        result = lint_source(
            f"import numpy\nimport numpy as np\nx = {call}\n",
        )
        assert "DET003" in rules_of(result)

    def test_generator_method_is_clean(self, lint_source):
        result = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "x = rng.normal(0, 1, 10)\n",
        )
        assert result.diagnostics == []


class TestWallClockSeeds:
    def test_time_seed_in_default_rng(self, lint_source):
        result = lint_source(
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n",
        )
        assert "DET004" in rules_of(result)

    def test_time_ns_in_seed_kwarg(self, lint_source):
        result = lint_source(
            "import time\ndef f(seed=0): pass\nf(seed=time.time_ns())\n",
        )
        assert rules_of(result) == ["DET004"]

    def test_datetime_now_entropy(self, lint_source):
        result = lint_source(
            "from datetime import datetime\nimport numpy as np\n"
            "seq = np.random.SeedSequence(datetime.now().microsecond)\n",
        )
        assert "DET004" in rules_of(result)

    def test_config_derived_seed_is_clean(self, lint_source):
        result = lint_source(
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed ^ 0x5F5F)\n",
        )
        assert result.diagnostics == []


class TestSuppression:
    def test_legacy_det_marker_suppresses(self, lint_source):
        result = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # det: allow\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"DET001": 1}

    @pytest.mark.parametrize("comment,rule_id,source", [
        ("# lint: allow[DET001]", "DET001",
         "import numpy as np\nrng = np.random.default_rng()  {c}\n"),
        ("# lint: allow[DET002]", "DET002",
         "import numpy as np\nseq = np.random.SeedSequence()  {c}\n"),
        ("# lint: allow[DET003]", "DET003",
         "import numpy as np\nx = np.random.rand(4)  {c}\n"),
        ("# lint: allow[DET004]", "DET004",
         "import time\ndef f(seed=0): pass\nf(seed=time.time_ns())  {c}\n"),
    ])
    def test_unified_allow_per_rule(self, lint_source, comment, rule_id,
                                    source):
        result = lint_source(source.format(c=comment))
        assert result.diagnostics == []
        assert result.suppressed == {rule_id: 1}
