"""Shared helpers for the repro.lint test suite."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "lint_fixtures"


@pytest.fixture
def lint_source(tmp_path):
    """Write dedented ``source`` to a temp module and lint just it."""

    def run(source, name="fixture_mod.py", rules=None):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint(
            [path], rules=rules, record_telemetry=False, root=tmp_path
        )

    return run


def rules_of(result):
    return [d.rule for d in result.diagnostics]
