"""PKL rule tests: picklability across process-pool boundaries."""

from .conftest import rules_of

POOL_IMPORT = "from concurrent.futures import ProcessPoolExecutor\n"


class TestPKL001:
    def test_lambda_literal_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run():\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(lambda: 1)\n",
        )
        assert rules_of(result) == ["PKL001"]

    def test_lambda_bound_name_in_map(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(items):\n"
            "    work = lambda x: x + 1\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.map(work, items)\n",
        )
        assert rules_of(result) == ["PKL001"]
        assert result.diagnostics[0].nodes == ("work",)

    def test_closure_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run():\n"
            "    def inner():\n"
            "        return 1\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(inner)\n",
        )
        assert rules_of(result) == ["PKL001"]

    def test_lambda_initializer(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run():\n"
            "    pool = ProcessPoolExecutor(initializer=lambda: None)\n",
        )
        assert rules_of(result) == ["PKL001"]

    def test_module_level_function_is_clean(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def work(x):\n"
            "    return x\n"
            "def run(items):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.map(work, items)\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run():\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(lambda: 1)  # lint: allow[PKL001]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"PKL001": 1}


class TestPKL002:
    ENGINE_IMPORT = "from repro.core.engines.base import Engine\n"

    def test_engine_annotated_param_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT + self.ENGINE_IMPORT +
            "def run(engine: Engine, solve):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(solve, engine)\n",
        )
        assert rules_of(result) == ["PKL002"]
        assert result.diagnostics[0].nodes == ("engine",)

    def test_resolve_engine_binding_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "from repro.core.engines.registry import resolve_engine\n"
            "def run(spec, solve):\n"
            "    engine = resolve_engine(spec)\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(solve, engine)\n",
        )
        assert rules_of(result) == ["PKL002"]

    def test_opaque_spec_argument_is_clean(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(spec, solve):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(solve, spec)\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            POOL_IMPORT + self.ENGINE_IMPORT +
            "def run(engine: Engine, solve):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(solve, engine)  # lint: allow[PKL002]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"PKL002": 1}


class TestPKL003:
    def test_open_handle_binding_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(parse):\n"
            "    handle = open('data.txt')\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(parse, handle)\n",
        )
        assert rules_of(result) == ["PKL003"]

    def test_inline_sqlite_connect_in_initargs(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "import sqlite3\n"
            "def setup(db):\n"
            "    pass\n"
            "def run():\n"
            "    pool = ProcessPoolExecutor(\n"
            "        initializer=setup,\n"
            "        initargs=(sqlite3.connect('db.sqlite'),),\n"
            "    )\n",
        )
        assert rules_of(result) == ["PKL003"]

    def test_with_bound_handle_in_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(parse):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    with open('data.txt') as fh:\n"
            "        pool.submit(parse, fh)\n",
        )
        assert rules_of(result) == ["PKL003"]

    def test_path_string_is_clean(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(parse):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(parse, 'data.txt')\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(parse):\n"
            "    handle = open('data.txt')\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(parse, handle)  # lint: allow[PKL]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"PKL003": 1}


class TestPKL004:
    SHM_IMPORT = (
        "from multiprocessing.shared_memory import SharedMemory\n"
    )

    def test_raw_constructor_outside_arena_module(self, lint_source):
        result = lint_source(
            self.SHM_IMPORT +
            "def grab():\n"
            "    return SharedMemory(create=True, size=64)\n",
        )
        assert rules_of(result) == ["PKL004"]

    def test_via_module_alias(self, lint_source):
        result = lint_source(
            "from multiprocessing import shared_memory\n"
            "def grab():\n"
            "    return shared_memory.SharedMemory(name='seg')\n",
        )
        assert rules_of(result) == ["PKL004"]

    def test_segment_across_pool_boundary(self, lint_source):
        result = lint_source(
            POOL_IMPORT + self.SHM_IMPORT +
            "def run(worker):\n"
            "    seg = SharedMemory(create=True, size=64)"
            "  # lint: allow[PKL004]\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(worker, seg)\n",
        )
        assert rules_of(result) == ["PKL004"]
        assert result.diagnostics[0].nodes == ("seg",)

    def test_handle_dataclass_is_clean(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(worker, handle):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(worker, handle)\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            self.SHM_IMPORT +
            "def grab():\n"
            "    return SharedMemory(create=True)  # lint: allow[PKL004]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"PKL004": 1}


class TestProcessWorkerSurface:
    """The service's process-transport submit surfaces (PR 9)."""

    def test_self_attribute_pool_submit(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "class Transport:\n"
            "    def __init__(self):\n"
            "        self._pool = ProcessPoolExecutor()\n"
            "    def go(self):\n"
            "        return self._pool.submit(lambda: 1)\n",
        )
        assert rules_of(result) == ["PKL001"]

    def test_run_in_executor_with_engine(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "from repro.core.engines.base import Engine\n"
            "class Transport:\n"
            "    def __init__(self):\n"
            "        self._pool = ProcessPoolExecutor()\n"
            "    async def go(self, loop, engine: Engine, solve):\n"
            "        return await loop.run_in_executor(\n"
            "            self._pool, solve, engine)\n",
        )
        assert rules_of(result) == ["PKL002"]
        assert result.diagnostics[0].nodes == ("engine",)

    def test_run_in_executor_specs_and_handles_clean(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def solve(spec, payload, handle):\n"
            "    return None\n"
            "class Transport:\n"
            "    def __init__(self):\n"
            "        self._pool = ProcessPoolExecutor()\n"
            "    async def go(self, loop, spec, payload, handle):\n"
            "        return await loop.run_in_executor(\n"
            "            self._pool, solve, spec, payload, handle)\n",
        )
        assert result.diagnostics == []

    def test_run_in_executor_on_thread_pool_is_clean(self, lint_source):
        result = lint_source(
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class Transport:\n"
            "    def __init__(self):\n"
            "        self._pool = ThreadPoolExecutor()\n"
            "    async def go(self, loop, engine):\n"
            "        return await loop.run_in_executor(\n"
            "            self._pool, engine.measure_batch, [])\n",
        )
        assert result.diagnostics == []


class TestScoping:
    def test_thread_pool_is_not_a_pickle_boundary(self, lint_source):
        result = lint_source(
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run():\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.submit(lambda: 1)\n",
        )
        assert "PKL001" not in rules_of(result)

    def test_rebinding_clears_the_kind(self, lint_source):
        result = lint_source(
            POOL_IMPORT +
            "def run(parse, reopen):\n"
            "    handle = open('data.txt')\n"
            "    handle = reopen()\n"
            "    pool = ProcessPoolExecutor()\n"
            "    pool.submit(parse, handle)\n",
        )
        assert result.diagnostics == []
