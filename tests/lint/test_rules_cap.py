"""CAP rule tests: engine access routed through declared capabilities."""

from .conftest import rules_of

ENGINE_IMPORT = "from repro.core.engines.base import Engine\n"


class TestCAP001:
    def test_isinstance_engine(self, lint_source):
        result = lint_source(
            ENGINE_IMPORT +
            "def probe(engine):\n"
            "    return isinstance(engine, Engine)\n",
        )
        assert rules_of(result) == ["CAP001"]

    def test_isinstance_engine_in_tuple(self, lint_source):
        result = lint_source(
            ENGINE_IMPORT +
            "def probe(engine):\n"
            "    return isinstance(engine, (int, Engine))\n",
        )
        assert rules_of(result) == ["CAP001"]

    def test_hasattr_probe_on_engine(self, lint_source):
        result = lint_source(
            "def probe(engine):\n"
            "    return hasattr(engine, 'delta_t_mc')\n",
        )
        assert rules_of(result) == ["CAP001"]

    def test_getattr_probe_on_self_engine(self, lint_source):
        result = lint_source(
            "class Flow:\n"
            "    def probe(self):\n"
            "        return getattr(self._engine, 'measure', None)\n",
        )
        assert rules_of(result) == ["CAP001"]

    def test_isinstance_unrelated_class_is_clean(self, lint_source):
        result = lint_source(
            "def probe(engine):\n"
            "    return isinstance(engine, dict)\n",
        )
        assert result.diagnostics == []

    def test_hasattr_on_non_engine_name_is_clean(self, lint_source):
        result = lint_source(
            "def probe(config):\n"
            "    return hasattr(config, 'vdd')\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            ENGINE_IMPORT +
            "def probe(engine):\n"
            "    return isinstance(engine, Engine)  # lint: allow[CAP001]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"CAP001": 1}


class TestCAP002:
    def test_off_surface_attribute(self, lint_source):
        result = lint_source(
            "def poke(engine):\n"
            "    return engine.solver_state\n",
        )
        assert rules_of(result) == ["CAP002"]
        assert result.diagnostics[0].nodes == ("engine", "solver_state")

    def test_self_engine_off_surface(self, lint_source):
        result = lint_source(
            "class Flow:\n"
            "    def poke(self):\n"
            "        return self.engine._lu_cache\n",
        )
        assert rules_of(result) == ["CAP002"]

    def test_declared_surface_is_clean(self, lint_source):
        result = lint_source(
            "def use(engine, tsv):\n"
            "    engine.measure(tsv)\n"
            "    engine.capabilities\n"
            "    engine.config\n"
            "    return engine.delta_t(tsv)\n",
        )
        assert result.diagnostics == []

    def test_non_engine_receiver_is_clean(self, lint_source):
        result = lint_source(
            "def use(batcher):\n"
            "    return batcher.queue_depth\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            "def poke(engine):\n"
            "    return engine.solver_state  # lint: allow[CAP]\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"CAP002": 1}
