"""ENGINE_SURFACE must track the real Engine ABC, or fail loudly."""

from repro.core.engines.base import Engine
from repro.lint.passes.cap import ENGINE_SURFACE


def real_engine_surface():
    """Public attributes the Engine class actually declares."""
    names = set()
    for klass in Engine.__mro__:
        if klass is object:
            continue
        names.update(
            name for name in vars(klass)
            if not name.startswith("_")
        )
    names.update(
        name for name in getattr(Engine, "__annotations__", {})
        if not name.startswith("_")
    )
    return names


def test_engine_surface_matches_the_abc():
    real = real_engine_surface()
    missing = real - ENGINE_SURFACE
    stale = ENGINE_SURFACE - real
    assert not missing, (
        f"Engine grew public attributes the CAP002 surface misses: "
        f"{sorted(missing)}; add them to ENGINE_SURFACE (and DESIGN.md "
        "Sec. 3.8) deliberately"
    )
    assert not stale, (
        f"ENGINE_SURFACE lists attributes Engine no longer has: "
        f"{sorted(stale)}"
    )
