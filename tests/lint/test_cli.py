"""CLI behavior of ``python -m repro.lint``, plus the repo self-check."""

import json
import os
import subprocess
import sys

from repro.lint.cli import main

from .conftest import FIXTURE_DIR, REPO_ROOT


def run_module(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestSelfCheck:
    def test_src_repro_lints_clean_strict(self):
        proc = run_module("src/repro", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_shim_cli_matches(self):
        env = dict(os.environ)
        proc = subprocess.run(
            [sys.executable, "tools/lint_determinism.py", "src"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestExitCodes:
    def test_findings_exit_one(self):
        proc = run_module(str(FIXTURE_DIR))
        assert proc.returncode == 1
        assert "PKL001" in proc.stdout

    def test_no_targets_exit_two(self):
        proc = run_module()
        assert proc.returncode == 2

    def test_unknown_rule_exit_two(self):
        proc = run_module("src/repro", "--select", "BOGUS999")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr


class TestOutputs:
    def test_rules_table(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PKL001", "AIO001", "CAP001", "TEL001",
                        "RACE001", "DET001"):
            assert rule_id in out

    def test_json_report_to_file(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main([str(FIXTURE_DIR), "--json", str(report)])
        capsys.readouterr()
        assert code == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["diagnostics"]

    def test_select_family_via_cli(self, capsys):
        code = main([str(FIXTURE_DIR), "--select", "DET", "--quiet"])
        out = capsys.readouterr().out
        assert code == 1
        assert "4 finding(s)" in out

    def test_baseline_roundtrip_via_cli(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(FIXTURE_DIR), "--write-baseline",
                     str(baseline)]) == 0
        capsys.readouterr()
        code = main([str(FIXTURE_DIR), "--baseline", str(baseline),
                     "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out

    def test_missing_baseline_exit_two(self, tmp_path, capsys):
        code = main([str(FIXTURE_DIR), "--baseline",
                     str(tmp_path / "nope.json")])
        capsys.readouterr()
        assert code == 2
