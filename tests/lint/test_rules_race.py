"""RACE rule tests: shared-state mutation on thread worker paths."""

from .conftest import rules_of

POOL = "from concurrent.futures import ThreadPoolExecutor\n"


class TestRACE001:
    def test_unlocked_dict_write_from_mapped_worker(self, lint_source):
        result = lint_source(
            POOL +
            "_CACHE = {}\n"
            "def worker(key):\n"
            "    _CACHE[key] = 1\n"
            "def run(keys):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        pool.map(worker, keys)\n",
        )
        assert rules_of(result) == ["RACE001"]
        assert result.diagnostics[0].nodes == ("_CACHE",)

    def test_global_rebind_from_submitted_worker(self, lint_source):
        result = lint_source(
            POOL +
            "_TOTAL = 0\n"
            "def worker(x):\n"
            "    global _TOTAL\n"
            "    _TOTAL += x\n"
            "def run(xs):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    for x in xs:\n"
            "        pool.submit(worker, x)\n",
        )
        assert rules_of(result) == ["RACE001"]

    def test_mutating_method_via_transitive_callee(self, lint_source):
        result = lint_source(
            POOL +
            "_RESULTS = []\n"
            "def record(value):\n"
            "    _RESULTS.append(value)\n"
            "def worker(x):\n"
            "    record(x * 2)\n"
            "def run(xs):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.map(worker, xs)\n",
        )
        assert rules_of(result) == ["RACE001"]

    def test_run_in_executor_entry(self, lint_source):
        result = lint_source(
            "_STATE = {}\n"
            "def worker():\n"
            "    _STATE['k'] = 1\n"
            "async def go(loop, executor):\n"
            "    await loop.run_in_executor(executor, worker)\n",
        )
        assert rules_of(result) == ["RACE001"]

    def test_lock_guarded_mutation_is_clean(self, lint_source):
        result = lint_source(
            POOL +
            "import threading\n"
            "_CACHE = {}\n"
            "_LOCK = threading.Lock()\n"
            "def worker(key):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = 1\n"
            "def run(keys):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.map(worker, keys)\n",
        )
        assert result.diagnostics == []

    def test_local_mutation_is_clean(self, lint_source):
        result = lint_source(
            POOL +
            "def worker(key):\n"
            "    local = {}\n"
            "    local[key] = 1\n"
            "    return local\n"
            "def run(keys):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.map(worker, keys)\n",
        )
        assert result.diagnostics == []

    def test_mutation_off_worker_path_is_clean(self, lint_source):
        result = lint_source(
            POOL +
            "_CACHE = {}\n"
            "def warm(key):\n"
            "    _CACHE[key] = 1\n"
            "def worker(key):\n"
            "    return key\n"
            "def run(keys):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.map(worker, keys)\n",
        )
        assert result.diagnostics == []

    def test_allow_comment_suppresses(self, lint_source):
        result = lint_source(
            POOL +
            "_CACHE = {}\n"
            "def worker(key):\n"
            "    _CACHE[key] = 1  # lint: allow[RACE001]\n"
            "def run(keys):\n"
            "    pool = ThreadPoolExecutor()\n"
            "    pool.map(worker, keys)\n",
        )
        assert result.diagnostics == []
        assert result.suppressed == {"RACE001": 1}
