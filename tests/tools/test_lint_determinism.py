"""Unit tests for the AST determinism lint (tools/lint_determinism.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT_PATH = REPO_ROOT / "tools" / "lint_determinism.py"

spec = importlib.util.spec_from_file_location("lint_determinism", LINT_PATH)
lint = importlib.util.module_from_spec(spec)
sys.modules["lint_determinism"] = lint
spec.loader.exec_module(lint)


def findings_of(tmp_path, source):
    path = tmp_path / "case.py"
    path.write_text(source)
    return lint.lint_file(path)


def rules_of(findings):
    return [f.rule for f in findings]


class TestUnseededGenerators:
    def test_default_rng_no_args(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rules_of(findings) == ["DET001"]

    def test_default_rng_none(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(None)\n",
        )
        assert rules_of(findings) == ["DET001"]

    def test_imported_default_rng(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "from numpy.random import default_rng\nrng = default_rng()\n",
        )
        assert rules_of(findings) == ["DET001"]

    def test_seeded_default_rng_is_clean(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(42)\n",
        )
        assert findings == []

    def test_seed_sequence_without_entropy(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nseq = np.random.SeedSequence()\n",
        )
        assert rules_of(findings) == ["DET002"]

    def test_seed_sequence_with_entropy_is_clean(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nseq = np.random.SeedSequence(7)\n",
        )
        assert findings == []


class TestLegacyModuleSamplers:
    @pytest.mark.parametrize("call", [
        "np.random.normal(0, 1, 10)",
        "np.random.rand(4)",
        "np.random.seed(0)",
        "np.random.RandomState(0)",
        "numpy.random.uniform()",
    ])
    def test_legacy_call_flagged(self, tmp_path, call):
        findings = findings_of(
            tmp_path, f"import numpy\nimport numpy as np\nx = {call}\n"
        )
        assert "DET003" in rules_of(findings)

    def test_generator_method_is_clean(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "x = rng.normal(0, 1, 10)\n",
        )
        assert findings == []


class TestWallClockSeeds:
    def test_time_seed_in_default_rng(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n",
        )
        assert "DET004" in rules_of(findings)

    def test_time_ns_in_seed_kwarg(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import time\ndef f(seed=0): pass\nf(seed=time.time_ns())\n",
        )
        assert rules_of(findings) == ["DET004"]

    def test_datetime_now_entropy(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "from datetime import datetime\nimport numpy as np\n"
            "seq = np.random.SeedSequence(datetime.now().microsecond)\n",
        )
        assert "DET004" in rules_of(findings)

    def test_config_derived_seed_is_clean(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed ^ 0x5F5F)\n",
        )
        assert findings == []


class TestSuppressionAndCli:
    def test_marker_suppresses_line(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # det: allow\n",
        )
        assert findings == []

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        findings = findings_of(tmp_path, "def broken(:\n")
        assert rules_of(findings) == ["DET000"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\nr = np.random.default_rng(0)\n")
        assert lint.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nr = np.random.default_rng()\n")
        assert lint.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_repo_src_is_clean(self):
        assert lint.main([str(REPO_ROOT / "src")]) == 0
