"""Compatibility tests for the tools/lint_determinism.py shim.

The determinism rules themselves are tested in
``tests/lint/test_rules_det.py`` against the unified analyzer; this
file pins the *shim contract*: the historical module API
(``Finding``/``lint_file``/``iter_python_files``/``main``), output
format, suppression marker, and exit codes that existing automation
depends on.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT_PATH = REPO_ROOT / "tools" / "lint_determinism.py"

spec = importlib.util.spec_from_file_location("lint_determinism", LINT_PATH)
lint = importlib.util.module_from_spec(spec)
sys.modules["lint_determinism"] = lint
spec.loader.exec_module(lint)


def findings_of(tmp_path, source):
    path = tmp_path / "case.py"
    path.write_text(source)
    return lint.lint_file(path)


class TestShimApi:
    def test_finding_format_is_path_line_col_rule(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        (finding,) = findings
        assert finding.rule == "DET001"
        assert finding.line == 2
        assert finding.format() == (
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"DET001 {finding.message}"
        )

    def test_all_det_rules_reachable(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import time\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.SeedSequence()\n"
            "c = np.random.rand(4)\n"
            "d = np.random.default_rng(int(time.time()))\n",
        )
        assert [f.rule for f in findings] == \
            ["DET001", "DET002", "DET003", "DET004"]

    def test_legacy_marker_suppresses_line(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # det: allow\n",
        )
        assert findings == []

    def test_unified_allow_comment_also_works(self, tmp_path):
        findings = findings_of(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow[DET001]\n",
        )
        assert findings == []

    def test_syntax_error_reported_as_det000(self, tmp_path):
        findings = findings_of(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["DET000"]

    def test_iter_python_files_walks_directories(self, tmp_path):
        (tmp_path / "a.py").write_text("")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("")
        names = [p.name for p in lint.iter_python_files([tmp_path])]
        assert names == ["a.py", "b.py"]


class TestShimCli:
    def test_main_exit_codes_and_summary(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\nr = np.random.default_rng(0)\n")
        assert lint.main([str(clean)]) == 0
        assert "1 file(s) checked, 0 finding(s)" in capsys.readouterr().out

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nr = np.random.default_rng()\n")
        assert lint.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "2 file(s) checked, 1 finding(s)" in out

    def test_repo_src_is_clean(self):
        assert lint.main([str(REPO_ROOT / "src")]) == 0
