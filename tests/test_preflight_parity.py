"""Parity: every shipped netlist passes the pre-flight analyzer clean.

The analyzer is only trustworthy as a fail-fast gate if it never
rejects (or even warns about) the circuits the repo itself builds: the
examples' declared netlists, the engines' segment/closer/ring shapes,
and the benchmark topologies.  Plus smoke tests of the
``python -m repro.spice.staticcheck`` CLI.
"""

from pathlib import Path

import pytest

from repro.cells import CellKit
from repro.core.engines import StageDelayEngine
from repro.core.segments import RingOscillatorConfig, build_ring_oscillator
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice import DC, Pulse
from repro.spice.netlist import GROUND, Circuit
from repro.spice.stamping import StampPlan
from repro.spice.staticcheck import check_circuit, discover, load_circuits, main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def assert_clean(circuit, label):
    report = check_circuit(circuit, StampPlan(circuit))
    assert report.clean, f"{label}:\n{report.render()}"


class TestExamplesClean:
    def test_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 5

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_every_declared_circuit_is_clean(self, path):
        circuits = load_circuits(path)
        assert circuits, f"{path.name} declared no circuits"
        for label, circuit in circuits.items():
            assert_clean(circuit, f"{path.name}:{label}")

    def test_discover_finds_every_example(self):
        assert discover(EXAMPLES_DIR) == EXAMPLE_FILES


class TestEngineShapesClean:
    def test_stage_engine_circuits(self):
        engine = StageDelayEngine(
            config=RingOscillatorConfig(num_segments=5, vdd=1.1)
        )
        for tsv in (Tsv(), Tsv(fault=ResistiveOpen(3000.0, 0.5)),
                    Tsv(fault=Leakage(700.0))):
            for label, circuit in engine.preflight_circuits(tsv).items():
                assert_clean(circuit, f"stage:{label}:{tsv.fault.kind}")

    def test_full_ring_all_masks(self):
        config = RingOscillatorConfig(num_segments=3)
        for mask in ([True] * 3, [False] * 3, [True, False, False]):
            ro = build_ring_oscillator([Tsv()] * 3, config, enabled=mask)
            assert_clean(ro.circuit, f"ring:{mask}")

    def test_benchmark_io_cell_shape(self):
        # The Fig. 4 benchmark topology: driver + TSV + receiver.
        circuit = Circuit("fig4")
        circuit.add_vsource("vdd", "vdd", GROUND, DC(1.1))
        circuit.add_vsource("v_en", "en", GROUND, DC(1.1))
        circuit.add_vsource("vin", "in", GROUND,
                            Pulse(0.0, 1.1, delay=100e-12, rise=20e-12,
                                  fall=20e-12, width=900e-12))
        kit = CellKit(circuit)
        kit.io_cell("io", "in", "en", "pad", "out")
        Tsv().build(circuit, "tsv", "pad")
        assert_clean(circuit, "fig4-io-cell")

    def test_benchmark_distributed_ladder_shape(self):
        circuit = Circuit("ladder")
        circuit.add_vsource("vdd", "vdd", GROUND, DC(1.1))
        circuit.add_vsource("vin", "in", GROUND,
                            Pulse(0.0, 1.1, delay=100e-12, rise=20e-12,
                                  fall=20e-12, width=700e-12))
        kit = CellKit(circuit)
        kit.buffer("drv", "in", "pad", strength=4.0)
        Tsv().build_distributed(circuit, "tsv", "pad", segments=10)
        assert_clean(circuit, "distributed-ladder")


class TestCli:
    def test_clean_run_over_examples(self, capsys):
        assert main([str(EXAMPLES_DIR)]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "floating-node" in out
        assert "structural-singular" in out

    def test_bad_netlist_fails_with_named_element(self, tmp_path, capsys):
        bad = tmp_path / "bad_example.py"
        bad.write_text(
            "from repro.spice.netlist import Circuit, GROUND\n"
            "def preflight_circuits():\n"
            "    c = Circuit('bad')\n"
            "    c.add_vsource('v1', 'a', GROUND, 1.0)\n"
            "    c.add_vsource('v2', 'a', GROUND, 1.0)\n"
            "    c.add_resistor('r', 'a', GROUND, 1e3)\n"
            "    return {'bad': c}\n"
        )
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "vsource-loop" in out
        assert "'v2'" in out

    def test_file_without_hook_is_usage_error(self, tmp_path, capsys):
        plain = tmp_path / "plain.py"
        plain.write_text("x = 1\n")
        assert main([str(plain)]) == 2
        assert "preflight_circuits" in capsys.readouterr().err

    def test_no_targets_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_strict_mode_fails_on_warnings(self, tmp_path, capsys):
        warny = tmp_path / "warny.py"
        warny.write_text(
            "from repro.spice.mosfet import NMOS_45LP\n"
            "from repro.spice.netlist import Circuit, GROUND\n"
            "def preflight_circuits():\n"
            "    c = Circuit('warny')\n"
            "    c.add_vsource('vdd', 'vdd', GROUND, 1.1)\n"
            "    c.add_vsource('vin', 'in', GROUND, 0.0)\n"
            "    c.add_mosfet('mn', 'out', 'in', GROUND, GROUND,\n"
            "                 NMOS_45LP, w=1e-6, parasitics=False)\n"
            "    c.add_resistor('rl', 'out', 'vdd', 1e4)\n"
            "    return {'warny': c}\n"
        )
        assert main([str(warny)]) == 0
        capsys.readouterr()
        assert main(["--strict", str(warny)]) == 1
        assert "zero-cap-dynamic-node" in capsys.readouterr().out


class TestShimRemoved:
    def test_legacy_entry_point_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.staticcheck  # noqa: F401
