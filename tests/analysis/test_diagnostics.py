"""Unit tests for the structured diagnostics layer."""

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    PreflightError,
    Severity,
    record_diagnostics,
)
from repro.telemetry import Telemetry, use_telemetry


def diag(rule="some-rule", severity=Severity.ERROR, **kw):
    kw.setdefault("message", "something is wrong")
    return Diagnostic(rule, severity, **kw)


class TestSeverity:
    def test_rank_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_values_are_stable_strings(self):
        assert Severity.ERROR.value == "error"
        assert Severity.WARNING.value == "warning"
        assert Severity.INFO.value == "info"


class TestDiagnosticFormat:
    def test_includes_rule_severity_element_nodes_and_hint(self):
        d = diag(
            rule="vsource-loop",
            message="source loop",
            element="v2",
            nodes=("a", "b"),
            hint="remove one source",
        )
        text = d.format()
        assert "error[vsource-loop]" in text
        assert "element 'v2'" in text
        assert "'a', 'b'" in text
        assert "hint: remove one source" in text

    def test_minimal_format(self):
        text = diag(severity=Severity.INFO, message="note").format()
        assert text == "info[some-rule] note"


class TestDiagnosticReport:
    def test_queries_split_by_severity(self):
        report = DiagnosticReport(subject="x")
        report.append(diag(severity=Severity.ERROR))
        report.append(diag(rule="warn-rule", severity=Severity.WARNING))
        report.append(diag(rule="info-rule", severity=Severity.INFO))
        assert len(report) == 3
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert report.has_errors
        assert not report.clean
        assert report.rules_fired() == ["info-rule", "some-rule", "warn-rule"]

    def test_clean_report(self):
        report = DiagnosticReport(subject="x")
        assert report.clean and not report.has_errors
        report.raise_if_errors()  # no-op
        assert "clean" in report.summary()

    def test_render_orders_worst_first(self):
        report = DiagnosticReport(subject="x")
        report.append(diag(rule="info-rule", severity=Severity.INFO))
        report.append(diag(rule="err-rule", severity=Severity.ERROR))
        lines = report.render().splitlines()
        assert "error[err-rule]" in lines[1]
        assert "info[info-rule]" in lines[2]

    def test_raise_if_errors_carries_report_and_names(self):
        report = DiagnosticReport(subject="bad circuit")
        report.append(diag(element="r1", nodes=("n1",)))
        with pytest.raises(PreflightError) as excinfo:
            report.raise_if_errors("unit test")
        assert excinfo.value.report is report
        assert "unit test" in str(excinfo.value)
        assert "'r1'" in str(excinfo.value)

    def test_warnings_alone_do_not_raise(self):
        report = DiagnosticReport()
        report.append(diag(severity=Severity.WARNING))
        report.raise_if_errors()


class TestRecordDiagnostics:
    def test_counts_emitted_and_suppressed(self):
        report = DiagnosticReport()
        report.append(diag(rule="err-rule", severity=Severity.ERROR))
        report.append(diag(rule="warn-rule", severity=Severity.WARNING))
        report.append(diag(rule="warn-rule", severity=Severity.WARNING))
        tele = Telemetry()
        with use_telemetry(tele):
            record_diagnostics(report, fail_severity=Severity.ERROR)
        counters = tele.snapshot()["counters"]
        assert counters["diag_emitted.err-rule"] == 1
        assert counters["diag_emitted.warn-rule"] == 2
        # Below-threshold findings are the suppressed ones.
        assert counters["diag_suppressed.warn-rule"] == 2
        assert "diag_suppressed.err-rule" not in counters
