"""Unit tests for ROC analysis and distribution summaries."""

import math

import numpy as np
import pytest

from repro.analysis.stats import roc_auc, roc_points, summarize


class TestSummarize:
    def test_basic_fields(self):
        stats = summarize(np.array([1.0, 2.0, 3.0]))
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["spread"] == pytest.approx(2.0)
        assert stats["stuck_fraction"] == 0.0

    def test_stuck_fraction(self):
        stats = summarize(np.array([1.0, np.nan, np.nan, 2.0]))
        assert stats["stuck_fraction"] == 0.5

    def test_all_stuck(self):
        stats = summarize(np.array([np.nan, np.nan]))
        assert math.isnan(stats["mean"])
        assert stats["stuck_fraction"] == 1.0


class TestRoc:
    def test_perfectly_separable(self):
        ff = np.zeros(50)
        faulty = np.full(50, 10.0)
        assert roc_auc(faulty, ff) == pytest.approx(1.0, abs=0.02)

    def test_identical_distributions_near_half(self):
        rng = np.random.default_rng(0)
        ff = rng.normal(0, 1, 400)
        faulty = rng.normal(0, 1, 400)
        assert roc_auc(faulty, ff) == pytest.approx(0.5, abs=0.1)

    def test_stuck_samples_always_detected(self):
        ff = np.zeros(10)
        faulty = np.full(10, np.nan)
        assert roc_auc(faulty, ff) == pytest.approx(1.0, abs=0.02)

    def test_points_monotone_in_fpr(self):
        rng = np.random.default_rng(1)
        pts = roc_points(rng.normal(2, 1, 100), rng.normal(0, 1, 100))
        fprs = [p[0] for p in pts]
        assert fprs == sorted(fprs)

    def test_points_start_and_end(self):
        rng = np.random.default_rng(2)
        pts = roc_points(rng.normal(3, 1, 50), rng.normal(0, 1, 50))
        assert pts[-1] == (1.0, 1.0)
        assert pts[0][0] == pytest.approx(0.0, abs=0.05)

    def test_requires_fault_free(self):
        with pytest.raises(ValueError):
            roc_points(np.array([1.0]), np.array([np.nan]))
