"""Unit tests for the table/series rendering helpers."""

import math

import pytest

from repro.analysis.reporting import Table, format_seconds, format_si


class TestFormatSi:
    @pytest.mark.parametrize("value,unit,expected", [
        (59e-15, "F", "59 fF"),
        (5e-9, "s", "5 ns"),
        (1000.0, "Ohm", "1 kOhm"),
        (0.0, "V", "0 V"),
        (2.2e6, "Hz", "2.2 MHz"),
    ])
    def test_engineering_notation(self, value, unit, expected):
        assert format_si(value, unit) == expected

    def test_infinity(self):
        assert format_si(math.inf, "Ohm") == "inf Ohm"

    def test_nan(self):
        assert format_si(math.nan) == "n/a"

    def test_negative_values(self):
        assert format_si(-20e-12, "s") == "-20 ps"

    def test_format_seconds(self):
        assert format_seconds(5e-6) == "5 us"


class TestTable:
    def test_render_contains_headers_and_rows(self):
        t = Table(["a", "b"], title="demo")
        t.add_row([1, 2.5])
        text = t.render()
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_row_length_validated(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_nan_rendered_as_stuck(self):
        t = Table(["x"])
        t.add_row([math.nan])
        assert "stuck" in t.render()

    def test_bool_rendering(self):
        t = Table(["ok"])
        t.add_row([True])
        t.add_row([False])
        text = t.render()
        assert "yes" in text and "no" in text

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_alignment_is_consistent(self):
        t = Table(["col"])
        t.add_row([1])
        t.add_row([100000])
        lines = t.render().splitlines()
        assert len({len(line) for line in lines[-2:]}) == 1
