"""PKL fixture: values that cannot cross a process-pool boundary."""

from concurrent.futures import ProcessPoolExecutor

from repro.core.engines.base import Engine


def submit_lambda():
    pool = ProcessPoolExecutor()
    return pool.submit(lambda: 1)


def submit_engine(engine: Engine, solve):
    pool = ProcessPoolExecutor()
    return pool.submit(solve, engine)


def submit_handle(parse):
    handle = open("data.txt")
    pool = ProcessPoolExecutor()
    return pool.submit(parse, handle)


def submit_suppressed():
    pool = ProcessPoolExecutor()
    return pool.submit(lambda: 1)  # lint: allow[PKL001]
