"""PKL fixture: values that cannot cross a process-pool boundary."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory

from repro.core.engines.base import Engine


def submit_lambda():
    pool = ProcessPoolExecutor()
    return pool.submit(lambda: 1)


def submit_engine(engine: Engine, solve):
    pool = ProcessPoolExecutor()
    return pool.submit(solve, engine)


def submit_handle(parse):
    handle = open("data.txt")
    pool = ProcessPoolExecutor()
    return pool.submit(parse, handle)


def submit_suppressed():
    pool = ProcessPoolExecutor()
    return pool.submit(lambda: 1)  # lint: allow[PKL001]


def raw_segment():
    return SharedMemory(create=True, size=64)


def ship_segment(worker):
    segment = shared_memory.SharedMemory(create=True, size=64)  # lint: allow[PKL004]
    pool = ProcessPoolExecutor()
    return pool.submit(worker, segment)


class SelfPool:
    def __init__(self):
        self._pool = ProcessPoolExecutor()

    def submit_via_attr(self):
        return self._pool.submit(lambda: 1)

    async def run_in_executor_via_attr(self, loop, engine: Engine, solve):
        return await loop.run_in_executor(self._pool, solve, engine)
