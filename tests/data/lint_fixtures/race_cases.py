"""RACE fixture: unsynchronized shared state on thread worker paths."""

import threading
from concurrent.futures import ThreadPoolExecutor

_CACHE = {}
_LOCK = threading.Lock()


def unlocked_worker(key):
    _CACHE[key] = 1


def locked_worker(key):
    with _LOCK:
        _CACHE[key] = 1


def run(keys):
    with ThreadPoolExecutor() as pool:
        pool.map(unlocked_worker, keys)
        pool.map(locked_worker, keys)
