"""CAP fixture: engine access outside the declared capability surface."""

from repro.core.engines.base import Engine


def type_probe(engine):
    return isinstance(engine, Engine)


def attr_probe(engine):
    return hasattr(engine, "delta_t_mc")


def off_surface(engine):
    return engine.solver_state


def suppressed_probe(engine):
    return isinstance(engine, Engine)  # lint: allow[CAP001]
