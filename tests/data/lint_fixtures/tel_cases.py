"""TEL fixture: metric names the registry does not sanction."""

from repro.telemetry import get_telemetry

tele = get_telemetry()


def orphaned():
    tele.incr("bogus.metric")


def kind_collision():
    tele.observe("ragged.packs", 1.0)


def malformed():
    tele.incr("Bad.Name")


def suppressed():
    tele.incr("bogus.metric")  # lint: allow[TEL]
