"""DET fixture: unseeded or clock-seeded random streams."""

import time

import numpy as np


def unseeded():
    return np.random.default_rng()


def unseeded_sequence():
    return np.random.SeedSequence()


def legacy_sampler():
    return np.random.normal(0, 1, 10)


def clock_seed():
    return np.random.default_rng(int(time.time()))


def suppressed_entropy():
    return np.random.default_rng()  # det: allow
