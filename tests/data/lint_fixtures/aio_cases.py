"""AIO fixture: blocking calls inside async def bodies."""

import time


async def blocking_sleep():
    time.sleep(0.1)


async def blocking_wait(future):
    return future.result()


async def blocking_shutdown(executor):
    executor.shutdown(wait=True)


async def suppressed_sleep():
    time.sleep(0.1)  # lint: allow[AIO]
