"""Unit tests for the sharded wafer-scale screening engine."""

import pytest

from repro.core.engines import registry as engine_registry
from repro.spice.cache import SolveCache, use_cache
from repro.workloads.flow import FlowMetrics, ScreeningFlow
from repro.workloads.generator import DefectStatistics
from repro.workloads.wafer import (
    WaferPopulation,
    WaferScreenResult,
    WaferScreeningEngine,
    aggregate_metrics,
)

STATS = DefectStatistics(void_rate=0.05, pinhole_rate=0.05,
                         full_open_fraction=0.2)
VOLTAGES = (1.1, 0.8)


@pytest.fixture(scope="module")
def wafer():
    return WaferPopulation(num_dies=5, tsvs_per_die=12, stats=STATS, seed=42)


def make_engine(**kw):
    kw.setdefault("characterization_samples", 40)
    kw.setdefault("voltages", VOLTAGES)
    kw.setdefault("seed", 7)
    return WaferScreeningEngine(engine_registry.spec("analytic"), **kw)


class TestWaferPopulation:
    def test_shape(self, wafer):
        assert len(wafer) == 5
        assert wafer.num_tsvs == 60
        assert all(len(die) == 12 for die in wafer)
        assert len(wafer.measure_seeds) == 5

    def test_same_seed_reproduces_everything(self, wafer):
        again = WaferPopulation(num_dies=5, tsvs_per_die=12, stats=STATS,
                                seed=42)
        assert again.measure_seeds == wafer.measure_seeds
        for a, b in zip(wafer, again):
            for ra, rb in zip(a, b):
                assert ra.fault_kind == rb.fault_kind
                assert ra.truly_faulty == rb.truly_faulty

    def test_dies_are_distinct_streams(self, wafer):
        kinds = [tuple(r.fault_kind for r in die) for die in wafer]
        assert len(set(kinds)) > 1
        assert len(set(wafer.measure_seeds)) == len(wafer.measure_seeds)

    def test_different_wafer_seed_differs(self, wafer):
        other = WaferPopulation(num_dies=5, tsvs_per_die=12, stats=STATS,
                                seed=43)
        assert other.measure_seeds != wafer.measure_seeds

    def test_defect_summary_totals(self, wafer):
        summary = wafer.defect_summary()
        assert summary["num_tsvs"] == 60
        assert summary["voids"] + summary["pinholes"] == sum(
            1 for die in wafer for r in die if r.truly_faulty
        )

    def test_rejects_empty_wafer(self):
        with pytest.raises(ValueError):
            WaferPopulation(num_dies=0)


class TestAggregateMetrics:
    def test_sums_fields_and_kind_maps(self):
        a = FlowMetrics(num_tsvs=10, true_faulty=2, detected=2,
                        measurements=30, test_time=1.0,
                        detected_by_kind={"void": 2})
        b = FlowMetrics(num_tsvs=10, true_faulty=1, detected=0, escapes=1,
                        overkill=1, measurements=20, test_time=0.5,
                        detected_by_kind={"pinhole": 0},
                        escaped_by_kind={"pinhole": 1})
        total = aggregate_metrics([a, b])
        assert total.num_tsvs == 20
        assert total.detected == 2 and total.escapes == 1
        assert total.detected_by_kind == {"void": 2, "pinhole": 0}
        assert total.escaped_by_kind == {"pinhole": 1}
        assert total.test_time == pytest.approx(1.5)

    def test_empty(self):
        assert aggregate_metrics([]).num_tsvs == 0


class TestWaferScreeningEngine:
    def test_serial_screen_covers_every_die(self, wafer):
        result = make_engine().screen(wafer, workers=1)
        assert isinstance(result, WaferScreenResult)
        assert len(result.per_die) == len(wafer)
        assert result.totals.num_tsvs == wafer.num_tsvs
        assert result.workers == 1
        assert result.wall_time > 0
        assert result.counter("dies_screened") == len(wafer)

    def test_sharded_matches_serial_bit_for_bit(self, wafer):
        serial = make_engine().screen(wafer, workers=1)
        sharded = make_engine(chunk_size=2).screen(wafer, workers=2)
        assert sharded.workers == 2
        for a, b in zip(serial.per_die, sharded.per_die):
            assert a.as_row() == b.as_row()
            assert a.detected_by_kind == b.detected_by_kind
            assert a.escaped_by_kind == b.escaped_by_kind

    def test_chunking_does_not_change_results(self, wafer):
        one = make_engine(chunk_size=1).screen(wafer, workers=2)
        big = make_engine(chunk_size=4).screen(wafer, workers=2)
        assert [m.as_row() for m in one.per_die] == \
            [m.as_row() for m in big.per_die]

    def test_worker_telemetry_is_merged(self, wafer):
        result = make_engine().screen(wafer, workers=2)
        assert result.counter("dies_screened") == len(wafer)
        assert result.counter("measurements") > 0
        assert "screen" in result.telemetry["phase_seconds"]

    def test_precomputed_bands_match_self_characterized(self, wafer):
        engine = make_engine()
        flow = engine.flow
        handed = ScreeningFlow(
            engine_registry.spec("analytic"), voltages=VOLTAGES,
            characterization_samples=40, seed=7, bands=flow.bands,
        )
        die, seed = wafer.dies[0], wafer.measure_seeds[0]
        assert handed.screen_die(die, measure_seed=seed).as_row() == \
            flow.screen_die(die, measure_seed=seed).as_row()

    def test_second_screen_hits_cache(self, wafer):
        with use_cache(SolveCache()):
            make_engine().screen(wafer, workers=1)
            warm = make_engine().screen(wafer, workers=1)
        assert warm.counter("cache_hits") > 0
        assert warm.cache_hit_rate == 1.0

    def test_rejects_bad_worker_count(self, wafer):
        with pytest.raises(ValueError):
            make_engine().screen(wafer, workers=0)

    def test_flow_rejects_incomplete_bands(self):
        engine = make_engine()
        bands = engine.flow.bands
        bands.pop(VOLTAGES[0])
        with pytest.raises(ValueError):
            ScreeningFlow(engine_registry.spec("analytic"), voltages=VOLTAGES,
                          bands=bands)


class TestPreflightRejection:
    def _poisoned_wafer(self, bad_die=2):
        import dataclasses

        wafer = WaferPopulation(num_dies=5, tsvs_per_die=12, stats=STATS,
                                seed=42)
        rec = wafer.dies[bad_die].records[0]
        rec.tsv = dataclasses.replace(
            rec.tsv,
            params=dataclasses.replace(
                rec.tsv.params, capacitance=float("nan")
            ),
        )
        return wafer

    def test_bad_die_rejected_before_dispatch(self):
        wafer = self._poisoned_wafer()
        result = make_engine().screen(wafer, workers=1)
        assert result.dies_rejected == 1
        assert list(result.rejected) == [2]
        assert result.counter("dies_rejected") == 1
        assert result.counter("dies_screened") == len(wafer) - 1
        report = result.rejected[2]
        assert report.has_errors
        assert "tsv[0]" in report.errors[0].message

    def test_rejected_die_keeps_placeholder_slot(self):
        wafer = self._poisoned_wafer()
        result = make_engine().screen(wafer, workers=1)
        assert len(result.per_die) == len(wafer)
        placeholder = result.per_die[2]
        assert placeholder.num_tsvs == 12
        assert placeholder.measurements == 0

    def test_sharded_rejection_matches_serial(self):
        wafer = self._poisoned_wafer()
        serial = make_engine().screen(wafer, workers=1)
        sharded = make_engine(chunk_size=2).screen(wafer, workers=2)
        assert list(sharded.rejected) == list(serial.rejected)
        assert [m.as_row() for m in sharded.per_die] == \
            [m.as_row() for m in serial.per_die]

    def test_preflight_opt_out(self):
        wafer = self._poisoned_wafer()
        result = make_engine(preflight=False).screen(wafer, workers=1)
        assert result.dies_rejected == 0
        assert result.counter("dies_screened") == len(wafer)

    def test_clean_wafer_unaffected(self, wafer):
        gated = make_engine().screen(wafer, workers=1)
        ungated = make_engine(preflight=False).screen(wafer, workers=1)
        assert gated.dies_rejected == 0
        assert [m.as_row() for m in gated.per_die] == \
            [m.as_row() for m in ungated.per_die]
