"""Unit tests for the defect-population generator."""

import math

import numpy as np
import pytest

from repro.core.tsv import Leakage, ResistiveOpen
from repro.workloads.generator import (
    DefectStatistics,
    DiePopulation,
    TsvRecord,
)


class TestDefectStatistics:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            DefectStatistics(void_rate=1.5)
        with pytest.raises(ValueError):
            DefectStatistics(void_rate=0.6, pinhole_rate=0.6)


class TestDiePopulation:
    def test_size_and_indexing(self):
        pop = DiePopulation(num_tsvs=100, seed=1)
        assert len(pop) == 100
        assert pop[3].index == 3

    def test_seeded_reproducibility(self):
        a = DiePopulation(num_tsvs=200, seed=9)
        b = DiePopulation(num_tsvs=200, seed=9)
        assert a.faulty_indices() == b.faulty_indices()

    def test_different_seeds_differ(self):
        a = DiePopulation(num_tsvs=500, seed=1)
        b = DiePopulation(num_tsvs=500, seed=2)
        assert a.faulty_indices() != b.faulty_indices()

    def test_defect_rate_statistics(self):
        stats = DefectStatistics(void_rate=0.05, pinhole_rate=0.05)
        pop = DiePopulation(num_tsvs=4000, stats=stats, seed=3)
        summary = pop.defect_summary()
        assert summary["defect_rate"] == pytest.approx(0.10, abs=0.02)
        assert summary["voids"] > 0
        assert summary["pinholes"] > 0

    def test_zero_rates_give_clean_die(self):
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.0)
        pop = DiePopulation(num_tsvs=100, stats=stats, seed=0)
        assert pop.faulty_indices() == []

    def test_fault_parameters_physical(self):
        stats = DefectStatistics(void_rate=0.2, pinhole_rate=0.2)
        pop = DiePopulation(num_tsvs=500, stats=stats, seed=5)
        for record in pop:
            fault = record.tsv.fault
            if isinstance(fault, ResistiveOpen):
                assert fault.r_open >= 1.0
                assert 0.0 <= fault.x <= 1.0
            elif isinstance(fault, Leakage):
                assert fault.r_leak >= 10.0

    def test_full_opens_present_at_high_fraction(self):
        stats = DefectStatistics(void_rate=0.3, full_open_fraction=0.5)
        pop = DiePopulation(num_tsvs=300, stats=stats, seed=2)
        opens = [
            r.tsv.fault for r in pop
            if isinstance(r.tsv.fault, ResistiveOpen)
        ]
        assert any(math.isinf(f.r_open) for f in opens)
        assert any(math.isfinite(f.r_open) for f in opens)

    def test_capacitance_variation_bounded(self):
        pop = DiePopulation(num_tsvs=300, seed=4)
        caps = np.array([r.tsv.params.capacitance for r in pop])
        assert caps.min() >= 0.8 * 59e-15 - 1e-18
        assert caps.max() <= 1.2 * 59e-15 + 1e-18
        assert caps.std() > 0

    def test_groups_partition(self):
        pop = DiePopulation(num_tsvs=23, seed=0)
        groups = pop.groups(5)
        assert len(groups) == 5
        assert sum(len(g) for g in groups) == 23

    def test_groups_validation(self):
        with pytest.raises(ValueError):
            DiePopulation(num_tsvs=10, seed=0).groups(0)

    def test_record_kind_labels(self):
        pop = DiePopulation(
            num_tsvs=200,
            stats=DefectStatistics(void_rate=0.5, pinhole_rate=0.0),
            seed=8,
        )
        kinds = {r.fault_kind for r in pop}
        assert kinds <= {"fault_free", "resistive_open"}
