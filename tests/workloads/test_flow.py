"""Integration tests for the die-scale screening flow."""

import math

import pytest

from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.workloads.flow import FlowMetrics, ScreeningFlow
from repro.workloads.generator import DefectStatistics, DiePopulation


@pytest.fixture(scope="module")
def flow():
    return ScreeningFlow(
        "analytic",
        characterization_samples=80,
        seed=11,
    )


class TestCharacterization:
    def test_band_per_voltage(self, flow):
        for vdd in flow.voltages:
            band = flow.band(vdd)
            assert band.low < band.high

    def test_nominal_measurement_inside_band(self, flow):
        for vdd in flow.voltages:
            dt = flow._measure(Tsv(), vdd, seed=123)
            assert flow.band(vdd).contains(dt)


class TestScreening:
    def test_clean_die_has_no_escapes(self, flow):
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.0)
        pop = DiePopulation(num_tsvs=60, stats=stats, seed=1)
        metrics = flow.screen_die(pop)
        assert metrics.true_faulty == 0
        assert metrics.escapes == 0
        assert metrics.detection_rate == 1.0

    def test_gross_defects_all_detected(self, flow):
        """Full opens and hard shorts must never escape."""
        stats = DefectStatistics(
            void_rate=0.2, pinhole_rate=0.2,
            full_open_fraction=1.0,        # every void is a full open
            pinhole_r_median=300.0,        # strong leakage
            pinhole_r_sigma_ln=0.2,
        )
        pop = DiePopulation(num_tsvs=100, stats=stats, seed=2)
        metrics = flow.screen_die(pop)
        assert metrics.true_faulty > 10
        assert metrics.escape_rate < 0.15

    def test_overkill_modest(self, flow):
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.0)
        pop = DiePopulation(num_tsvs=200, stats=stats, seed=3)
        metrics = flow.screen_die(pop)
        assert metrics.overkill_rate < 0.10

    def test_metrics_accounting_consistent(self, flow):
        pop = DiePopulation(num_tsvs=100, seed=4)
        metrics = flow.screen_die(pop)
        assert metrics.detected + metrics.escapes == metrics.true_faulty
        assert metrics.measurements > 0
        assert metrics.test_time > 0

    def test_group_screen_reduces_measurements_on_clean_die(self):
        factory = "analytic"
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.0)
        pop = DiePopulation(num_tsvs=100, stats=stats, seed=5)
        isolating = ScreeningFlow(factory, characterization_samples=60,
                                  group_screen_first=False, seed=6)
        grouped = ScreeningFlow(factory, characterization_samples=60,
                                group_screen_first=True, seed=6)
        m_iso = isolating.screen_die(pop)
        m_grp = grouped.screen_die(pop)
        assert m_grp.measurements < m_iso.measurements

    def test_more_voltages_never_hurt_detection(self):
        factory = "analytic"
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.15,
                                 pinhole_r_median=1200.0,
                                 pinhole_r_sigma_ln=0.5)
        pop = DiePopulation(num_tsvs=150, stats=stats, seed=7)
        single = ScreeningFlow(factory, voltages=(1.1,),
                               characterization_samples=60, seed=8)
        multi = ScreeningFlow(factory, voltages=(1.1, 0.95, 0.8, 0.75),
                              characterization_samples=60, seed=8)
        d_single = single.screen_die(pop).detected
        d_multi = multi.screen_die(pop).detected
        assert d_multi >= d_single


class TestFlowMetrics:
    def test_rates_with_zero_denominators(self):
        metrics = FlowMetrics(num_tsvs=10, true_faulty=0)
        assert metrics.escape_rate == 0.0
        assert metrics.detection_rate == 1.0

    def test_overkill_rate_on_all_faulty_die_is_zero(self):
        metrics = FlowMetrics(num_tsvs=4, true_faulty=4, overkill=0)
        assert metrics.overkill_rate == 0.0

    def test_empty_population_rates_are_zero(self):
        metrics = FlowMetrics()
        assert metrics.num_tsvs == 0
        assert metrics.escape_rate == 0.0
        assert metrics.overkill_rate == 0.0
        assert metrics.escalation_rate == 0.0
        # Every as_row value must stay finite for the report writers.
        assert all(math.isfinite(v) for v in metrics.as_row().values())

    def test_rates_with_nonzero_denominators(self):
        metrics = FlowMetrics(
            num_tsvs=10, true_faulty=4, detected=3, escapes=1,
            overkill=2, escalated=5,
        )
        assert metrics.escape_rate == pytest.approx(1 / 4)
        assert metrics.overkill_rate == pytest.approx(2 / 6)
        assert metrics.detection_rate == pytest.approx(3 / 4)
        assert metrics.escalation_rate == pytest.approx(5 / 10)

    def test_as_row_keys(self):
        row = FlowMetrics(num_tsvs=5).as_row()
        for key in ("detection_rate", "escape_rate", "overkill_rate",
                    "test_time_s", "escalated", "escalation_rate"):
            assert key in row

    def test_cascade_dicts_are_per_instance(self):
        first, second = FlowMetrics(), FlowMetrics()
        first.stage_measurements["analytic"] = 8
        first.escalations["near_band"] = 1
        assert second.stage_measurements == {}
        assert second.escalations == {}


class TestFlowPreflight:
    def _poisoned_die(self):
        import dataclasses

        from repro.core.tsv import TsvParameters

        pop = DiePopulation(num_tsvs=10, seed=3)
        rec = pop.records[0]
        rec.tsv = dataclasses.replace(
            rec.tsv,
            params=dataclasses.replace(
                rec.tsv.params, capacitance=float("nan")
            ),
        )
        return pop

    def test_bad_die_rejected_with_named_tsv(self, flow):
        from repro.analysis.diagnostics import PreflightError

        with pytest.raises(PreflightError) as excinfo:
            flow.screen_die(self._poisoned_die())
        assert "tsv[0]" in str(excinfo.value)
        assert "nonphysical-value" in str(excinfo.value)

    def test_rejection_happens_before_any_measurement(self):
        from repro.analysis.diagnostics import PreflightError
        from repro.telemetry import Telemetry, use_telemetry

        bands_donor = ScreeningFlow(
            "analytic",
            characterization_samples=40, seed=11,
        )
        gated = ScreeningFlow(
            "analytic",
            characterization_samples=40, seed=11,
            bands=bands_donor.bands,
        )
        tele = Telemetry()
        with use_telemetry(tele):
            with pytest.raises(PreflightError):
                gated.screen_die(self._poisoned_die())
        counters = tele.snapshot()["counters"]
        assert counters.get("measurements", 0) == 0
        assert counters["diag_emitted.nonphysical-value"] == 1

    def test_opt_out_screens_anyway(self):
        ungated = ScreeningFlow(
            "analytic",
            characterization_samples=40, seed=11, preflight=False,
        )
        metrics = ungated.screen_die(self._poisoned_die())
        assert metrics.num_tsvs == 10

    def test_stop_floor_rises_at_lower_voltages(self, flow):
        floor = flow.stop_floor
        assert floor is not None and floor > 0
        high_only = ScreeningFlow(
            "analytic",
            voltages=(1.1,), characterization_samples=40, seed=11,
        )
        assert floor > high_only.stop_floor

    def test_preflight_die_reports_strong_leak_as_info(self, flow):
        from repro.core.tsv import Leakage as Leak

        pop = DiePopulation(
            num_tsvs=4,
            stats=DefectStatistics(void_rate=0.0, pinhole_rate=0.0),
            seed=1,
        )
        pop.records[0].tsv = Tsv(fault=Leak(r_leak=100.0))
        report = flow.preflight_die(pop)  # must NOT raise
        assert not report.has_errors
        assert "leakage-below-stop" in report.rules_fired()
