"""Shared fixtures for the test suite.

Transistor-level simulation is expensive, so fixtures centralize the
"small but real" configurations: coarse timesteps, few Monte Carlo
samples, short windows.  Anything tagged ``slow`` still runs in a normal
``pytest tests/`` invocation but is kept to a handful of cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.segments import RingOscillatorConfig
from repro.core.engines import AnalyticEngine, StageDelayEngine
from repro.spice.montecarlo import ProcessVariation


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: test runs a multi-second transistor-level sim"
    )


@pytest.fixture(scope="session")
def nominal_config() -> RingOscillatorConfig:
    return RingOscillatorConfig(num_segments=5, vdd=1.1)


@pytest.fixture(scope="session")
def low_voltage_config() -> RingOscillatorConfig:
    return RingOscillatorConfig(num_segments=5, vdd=0.75)


@pytest.fixture(scope="session")
def analytic_engine(nominal_config) -> AnalyticEngine:
    return AnalyticEngine(nominal_config)


@pytest.fixture(scope="session")
def stage_engine(nominal_config) -> StageDelayEngine:
    # 2 ps steps: ~2x faster than production settings, delays still
    # resolved to well under a picosecond by crossing interpolation.
    return StageDelayEngine(config=nominal_config, timestep=2e-12)


@pytest.fixture(scope="session")
def variation() -> ProcessVariation:
    return ProcessVariation()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
