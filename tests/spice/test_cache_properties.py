"""Property-based tests for the solve-cache key schema.

The cache is only sound if its content-addressed keys respect two
invariants:

* **No false misses** -- two callers that describe the *same* work
  through different code paths (separately constructed objects,
  different dict insertion orders, numpy scalars where another path
  passes python numbers) must land on the same key, or the cache
  silently loses its hit rate.
* **No false hits** -- any perturbation of any field that influences a
  solve (a resistance, a seed, a sigma) must change the key, or the
  cache returns a stale result for different physics.

Hypothesis drives both directions over the value types that actually
appear in keys: floats, ints, dataclasses (TSVs, faults, variation
models), circuits, dicts, and numpy scalars/arrays.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tsv import Leakage, ResistiveOpen, Tsv, TsvParameters
from repro.spice.cache import circuit_fingerprint, fingerprint
from repro.spice.montecarlo import ProcessVariation
from repro.spice.netlist import Circuit

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64
)
positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _tsv_circuit(tsv: Tsv) -> Circuit:
    circuit = Circuit(title="key-prop")
    tsv.build(circuit, name="t0", pad="pad")
    return circuit


# ----------------------------------------------------------------------
# No false misses: equal content -> equal key
# ----------------------------------------------------------------------
class TestEqualContentEqualKey:
    @given(r=positive_floats, c=positive_floats)
    def test_separately_constructed_tsvs_key_identically(self, r, c):
        a = Tsv(params=TsvParameters(resistance=r, capacitance=c))
        b = Tsv(params=TsvParameters(resistance=r, capacitance=c))
        assert a is not b
        assert fingerprint("solve", a) == fingerprint("solve", b)

    @given(r=positive_floats)
    def test_equal_circuits_built_twice_key_identically(self, r):
        tsv = Tsv(fault=Leakage(r_leak=r))
        assert circuit_fingerprint(_tsv_circuit(tsv)) == (
            circuit_fingerprint(_tsv_circuit(tsv))
        )

    @given(
        entries=st.dictionaries(
            st.text(max_size=8), st.integers(), max_size=6
        )
    )
    def test_dict_insertion_order_is_canonicalized(self, entries):
        reversed_entries = dict(reversed(list(entries.items())))
        assert fingerprint(entries) == fingerprint(reversed_entries)

    @given(x=finite_floats)
    def test_numpy_float64_keys_like_python_float(self, x):
        assert fingerprint(np.float64(x)) == fingerprint(x)

    @given(x=st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_numpy_float32_keys_like_its_python_value(self, x):
        narrowed = np.float32(x)
        assert fingerprint(narrowed) == fingerprint(float(narrowed))

    @given(n=st.integers(min_value=-(2**62), max_value=2**62))
    def test_numpy_int64_keys_like_python_int(self, n):
        assert fingerprint(np.int64(n)) == fingerprint(n)

    def test_numpy_bool_keys_like_python_bool(self):
        assert fingerprint(np.bool_(True)) == fingerprint(True)
        assert fingerprint(np.bool_(False)) == fingerprint(False)

    @given(x=finite_floats)
    def test_numpy_scalars_nested_in_structures(self, x):
        assert fingerprint({"vdd": np.float64(x), "m": np.int64(3)}) == (
            fingerprint({"vdd": x, "m": 3})
        )

    def test_signed_zero_and_nan_are_stable(self):
        # float.hex() distinguishes -0.0 from 0.0 and pins down NaN;
        # either way the same value always produces the same key.
        assert fingerprint(math.nan) == fingerprint(math.nan)
        assert fingerprint(0.0) != fingerprint(-0.0)


# ----------------------------------------------------------------------
# No false hits: any perturbation -> different key
# ----------------------------------------------------------------------
class TestPerturbationChangesKey:
    @given(
        field_name=st.sampled_from(["resistance", "capacitance"]),
        factor=st.floats(min_value=1.0 + 1e-12, max_value=10.0),
    )
    def test_single_tsv_parameter_perturbation_misses(
        self, field_name, factor
    ):
        base = TsvParameters()
        bumped = dataclasses.replace(
            base, **{field_name: getattr(base, field_name) * factor}
        )
        assert fingerprint(Tsv(params=base)) != (
            fingerprint(Tsv(params=bumped))
        )

    @given(r=positive_floats, delta=positive_floats)
    def test_fault_parameter_perturbation_misses(self, r, delta):
        assert fingerprint(Tsv(fault=Leakage(r_leak=r))) != (
            fingerprint(Tsv(fault=Leakage(r_leak=r + delta)))
        )

    @given(x=st.floats(min_value=0.0, max_value=0.9, exclude_min=False))
    def test_fault_kind_is_part_of_the_key(self, x):
        # Same resistance value, different physics.
        assert fingerprint(Tsv(fault=ResistiveOpen(r_open=500.0, x=x))) != (
            fingerprint(Tsv(fault=Leakage(r_leak=500.0)))
        )

    @given(
        field_name=st.sampled_from(["sigma_vth", "sigma_leff_rel"]),
        factor=st.floats(min_value=1.0 + 1e-9, max_value=5.0),
    )
    def test_variation_perturbation_misses(self, field_name, factor):
        base = ProcessVariation()
        bumped = dataclasses.replace(
            base, **{field_name: getattr(base, field_name) * factor}
        )
        assert fingerprint("mc", base, 100, 7) != (
            fingerprint("mc", bumped, 100, 7)
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_seed_and_sample_count_are_part_of_the_key(self, seed):
        base = fingerprint("mc", ProcessVariation(), 100, seed)
        assert base != fingerprint("mc", ProcessVariation(), 101, seed)
        assert base != fingerprint("mc", ProcessVariation(), 100, seed + 1)

    @given(r=positive_floats, factor=st.floats(min_value=1.0001,
                                               max_value=10.0))
    def test_circuit_element_value_perturbation_misses(self, r, factor):
        a = _tsv_circuit(Tsv(fault=Leakage(r_leak=r)))
        b = _tsv_circuit(Tsv(fault=Leakage(r_leak=r * factor)))
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_namespace_tag_separates_key_families(self):
        tsv = Tsv()
        assert fingerprint("measure.deterministic", tsv) != (
            fingerprint("cascade.measure", tsv)
        )

    @settings(max_examples=25)
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=16),
    )
    def test_array_content_and_shape_are_keyed(self, values):
        arr = np.asarray(values)
        assert fingerprint(arr) == fingerprint(arr.copy())
        assert fingerprint(arr) != fingerprint(arr.reshape(1, -1))
        bumped = arr.copy()
        bumped[0] += 1.0
        if not np.array_equal(bumped, arr):
            assert fingerprint(bumped) != fingerprint(arr)


class TestKeyShape:
    def test_fingerprint_is_hex_sha256(self):
        key = fingerprint("anything", 1, 2.0)
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_nesting_depth_is_bounded(self):
        nested: object = 0.0
        for _ in range(20):
            nested = [nested]
        with pytest.raises(ValueError, match="nesting too deep"):
            fingerprint(nested)
