"""Unit tests for the batched (stacked-MNA) transient engine."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    DC,
    NMOS_45LP,
    PMOS_45LP,
    Step,
    transient,
)
from repro.spice.batch import BatchParameters, BatchedSimulation
from repro.spice.montecarlo import ProcessVariation
from repro.spice.netlist import GROUND


def rc_circuit():
    c = Circuit()
    c.add_vsource("vin", "in", GROUND, Step(0.0, 1.0, t0=20e-12, rise=1e-13))
    c.add_resistor("r1", "in", "out", 1000.0)
    c.add_capacitor("c1", "out", GROUND, 100e-15)
    return c


def inverter_circuit(vdd=1.1):
    c = Circuit()
    c.add_vsource("vdd", "vdd", GROUND, DC(vdd))
    c.add_vsource("vin", "in", GROUND, Step(0.0, vdd, t0=50e-12, rise=20e-12))
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
    c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
    c.add_capacitor("cl", "out", GROUND, 2e-15)
    return c


class TestAgainstScalarEngine:
    def test_nominal_batch_matches_scalar(self):
        circuit = rc_circuit()
        scalar = transient(circuit, 500e-12, 1e-12)["out"]
        sim = BatchedSimulation(rc_circuit(), BatchParameters.nominal(3))
        batch = sim.transient(500e-12, 1e-12, record=["out"]).voltages["out"]
        for corner in range(3):
            assert np.max(np.abs(batch[corner] - scalar)) < 1e-6

    def test_inverter_batch_matches_scalar(self):
        scalar = transient(inverter_circuit(), 400e-12, 1e-12)["out"]
        sim = BatchedSimulation(inverter_circuit(), BatchParameters.nominal(2))
        batch = sim.transient(400e-12, 1e-12, record=["out"]).voltages["out"]
        assert np.max(np.abs(batch[0] - scalar)) < 1e-3


class TestResistorOverrides:
    def test_per_corner_time_constants(self):
        values = np.array([500.0, 1000.0, 2000.0])
        params = BatchParameters.nominal(3).with_resistor("r1", values)
        sim = BatchedSimulation(rc_circuit(), params)
        res = sim.transient(900e-12, 1e-12, record=["out"])
        t50 = [
            res.waveform("out", k).crossings(0.5, "rise")[0] - 20e-12
            for k in range(3)
        ]
        for k, r in enumerate(values):
            assert t50[k] == pytest.approx(0.693 * r * 100e-15, rel=0.03)

    def test_unknown_resistor_rejected(self):
        params = BatchParameters.nominal(2).with_resistor(
            "nope", np.array([1.0, 2.0])
        )
        with pytest.raises(KeyError):
            BatchedSimulation(rc_circuit(), params)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            BatchParameters.nominal(3).with_resistor("r1", np.array([1.0]))


class TestCapacitorOverrides:
    def test_per_corner_capacitance(self):
        values = np.array([50e-15, 200e-15])
        params = BatchParameters.nominal(2).with_capacitor("c1", values)
        sim = BatchedSimulation(rc_circuit(), params)
        res = sim.transient(900e-12, 1e-12, record=["out"])
        t50_small = res.waveform("out", 0).crossings(0.5, "rise")[0]
        t50_big = res.waveform("out", 1).crossings(0.5, "rise")[0]
        assert t50_big - 20e-12 == pytest.approx(
            4.0 * (t50_small - 20e-12), rel=0.05
        )

    def test_unknown_capacitor_rejected(self):
        params = BatchParameters.nominal(2).with_capacitor(
            "nope", np.array([1e-15, 2e-15])
        )
        with pytest.raises(KeyError):
            BatchedSimulation(rc_circuit(), params)


class TestMonteCarloParameters:
    def test_shapes(self):
        circuit = inverter_circuit()
        params = BatchParameters.monte_carlo(
            circuit, ProcessVariation(), 10, seed=1
        )
        assert params.mosfet_dvth.shape == (10, len(circuit.mosfets))
        assert params.mosfet_dl_rel.shape == (10, len(circuit.mosfets))

    def test_seeded_reproducibility(self):
        circuit = inverter_circuit()
        p1 = BatchParameters.monte_carlo(circuit, ProcessVariation(), 5, seed=9)
        p2 = BatchParameters.monte_carlo(circuit, ProcessVariation(), 5, seed=9)
        assert np.array_equal(p1.mosfet_dvth, p2.mosfet_dvth)

    def test_mc_delays_spread(self):
        """Mismatch must spread the inverter's output crossing times."""
        circuit = inverter_circuit()
        params = BatchParameters.monte_carlo(
            circuit, ProcessVariation(), 12, seed=4
        )
        sim = BatchedSimulation(inverter_circuit(), params)
        res = sim.transient(400e-12, 1e-12, record=["out"])
        t_fall = [
            res.waveform("out", k).crossings(0.55, "fall")[0]
            for k in range(12)
        ]
        assert np.std(t_fall) > 1e-13  # visible, sub-ps-scale spread

    def test_validation_of_timestep(self):
        sim = BatchedSimulation(rc_circuit(), BatchParameters.nominal(1))
        with pytest.raises(ValueError):
            sim.transient(1e-9, -1e-12)


class TestConcatValidation:
    """Structured errors from :meth:`BatchParameters.concat`.

    The screening service concatenates per-request parameter draws; a
    shape mismatch must name the offending part so a bad coalescing key
    is debuggable from the exception alone.
    """

    def test_concat_stacks_corners_in_order(self):
        circuit = inverter_circuit()
        parts = [
            BatchParameters.monte_carlo(circuit, ProcessVariation(), n, seed=n)
            for n in (2, 3)
        ]
        merged = BatchParameters.concat(parts)
        assert merged.num_corners == 5
        assert np.array_equal(merged.mosfet_dvth[:2], parts[0].mosfet_dvth)
        assert np.array_equal(merged.mosfet_dvth[2:], parts[1].mosfet_dvth)

    def test_empty_concat_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchParameters.concat([])

    def test_mixed_nominal_and_mc_names_the_part(self):
        circuit = inverter_circuit()
        parts = [
            BatchParameters.monte_carlo(circuit, ProcessVariation(), 2),
            BatchParameters.nominal(2),
        ]
        with pytest.raises(ValueError, match="part 1 omits mosfet_dvth"):
            BatchParameters.concat(parts)

    def test_mosfet_count_mismatch_names_the_part(self):
        parts = [
            BatchParameters(
                num_corners=2,
                mosfet_dvth=np.zeros((2, 4)),
                mosfet_dl_rel=np.zeros((2, 4)),
            ),
            BatchParameters(
                num_corners=2,
                mosfet_dvth=np.zeros((2, 4)),
                mosfet_dl_rel=np.zeros((2, 4)),
            ),
            BatchParameters(
                num_corners=1,
                mosfet_dvth=np.zeros((1, 6)),
                mosfet_dl_rel=np.zeros((1, 6)),
            ),
        ]
        with pytest.raises(
            ValueError, match="part 2 has mosfet_dvth for 6 mosfets but "
                              "part 0 has 4"
        ):
            BatchParameters.concat(parts)

    def test_resistor_name_mismatch_names_part_and_element(self):
        parts = [
            BatchParameters.nominal(2).with_resistor("r1", np.ones(2)),
            BatchParameters.nominal(2).with_resistor("r2", np.ones(2)),
        ]
        with pytest.raises(
            ValueError, match=r"part 1 overrides different resistors.*"
                              r"\['r1', 'r2'\]"
        ):
            BatchParameters.concat(parts)

    def test_capacitor_name_mismatch_names_part_and_element(self):
        parts = [
            BatchParameters.nominal(1).with_capacitor("c1", np.ones(1)),
            BatchParameters.nominal(1).with_capacitor("c1", np.ones(1)),
            BatchParameters.nominal(1),
        ]
        with pytest.raises(
            ValueError, match=r"part 2 overrides different capacitors.*"
                              r"\['c1'\]"
        ):
            BatchParameters.concat(parts)
