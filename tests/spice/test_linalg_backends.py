"""Cross-backend contracts of the unified MNA solver stack.

Every registered linear-algebra backend must produce the same physics:
the Fig. 4 ring oscillator's period and a leaky stage's propagation
delays may differ between backends only at solver tolerance (well below
0.1 ps, the paper's measurement resolution).  The module also pins the
structural claims of the refactor: scalar and S=1 batched assemblies are
bit-identical, the scalar/batched wrappers carry no integrator logic of
their own, and :class:`ConvergenceError` reports per-corner diagnostics.
"""

import inspect
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.spice.batch as batch_module
import repro.spice.transient as transient_module
from repro.core.segments import RingOscillatorConfig, build_ring_oscillator
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice import (
    Circuit,
    DenseLU,
    StampPlan,
    available_backends,
    make_solver,
    transient,
)
from repro.spice.mna import ConvergenceError, MnaSystem, NewtonOptions
from repro.spice.mosfet import NMOS_45LP, PMOS_45LP

BACKENDS = sorted(available_backends())

#: Cross-backend agreement bound: far below the paper's 0.1 ps resolution.
PERIOD_TOL = 0.1e-12


def _build_oscillator():
    config = RingOscillatorConfig(num_segments=2)
    return build_ring_oscillator([Tsv()] * 2, config)


def _leakage_stage():
    """One enabled segment with a leaky TSV (the Fig. 8 configuration)."""
    from repro.core.engines import StageDelayEngine

    engine = StageDelayEngine(timestep=2e-12)
    circuit, _ = engine._segment_circuit(
        Tsv(fault=Leakage(20e3)), bypassed=False
    )
    return engine, circuit


class TestBackendEquivalence:
    def _periods(self, backend_names):
        ro = _build_oscillator()
        periods = {}
        for name in backend_names:
            result = transient(
                ro.circuit, 6e-9, 2e-12,
                ics=ro.startup_ics, record=[ro.osc_node], backend=name,
            )
            wave = result.waveform(ro.osc_node)
            periods[name] = wave.period(ro.measurement_threshold)
        return periods

    def test_oscillator_period_identical_across_backends(self):
        periods = self._periods(BACKENDS)
        values = np.array(list(periods.values()))
        assert values.min() > 0
        spread = values.max() - values.min()
        assert spread < PERIOD_TOL, f"backend periods disagree: {periods}"

    def test_leakage_stage_delays_identical_across_backends(self):
        engine, circuit = _leakage_stage()
        half = engine.config.vdd / 2.0
        delays = {}
        for name in BACKENDS:
            result = transient(
                circuit, engine.stop_time(), engine.timestep,
                record=["din", "dout"], backend=name,
            )
            t_in = result.waveform("din").crossings(half, "rise")[0]
            t_out = result.waveform("dout").crossings(half, "rise")
            t_out = t_out[t_out >= t_in][0]
            delays[name] = t_out - t_in
        values = np.array(list(delays.values()))
        assert values.min() > 0
        assert values.max() - values.min() < PERIOD_TOL, (
            f"backend stage delays disagree: {delays}"
        )


class TestScalarBatchedAssemblyParity:
    """StampPlan must serve (n, n) and (S, n, n) shapes bit-identically."""

    @settings(max_examples=25, deadline=None)
    @given(
        scales=st.lists(
            st.floats(min_value=0.05, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=8,
        )
    )
    def test_linear_assembly_bit_identical(self, scales):
        engine, circuit = _leakage_stage()
        plan = StampPlan(circuit, gmin=1e-9)
        res_g = plan.res_g0 * np.resize(scales, plan.num_resistors)
        for space in (plan.reduced, plan.condensed):
            scalar = space.assemble_linear(res_g)
            stacked = space.assemble_linear(res_g[None, :])
            assert stacked.shape == (1,) + scalar.shape
            assert np.array_equal(scalar, stacked[0])
            bp_scalar = space.bpin_linear(res_g)
            bp_stacked = space.bpin_linear(res_g[None, :])
            assert np.array_equal(bp_scalar, bp_stacked[0])

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_fet_stamps_bit_identical(self, data):
        engine, circuit = _leakage_stage()
        plan = StampPlan(circuit, gmin=1e-9)
        fets = plan.nominal_fets()
        volts = data.draw(
            st.lists(
                st.floats(min_value=-1.5, max_value=1.5,
                          allow_nan=False, allow_infinity=False),
                min_size=plan.size, max_size=plan.size,
            )
        )
        x = np.array(volts)
        lin_scalar = plan.linearize_fets(fets, x)
        lin_stacked = plan.linearize_fets(fets, x[None, :])
        space = plan.condensed
        a1 = np.zeros((space.dim, space.dim))
        a2 = np.zeros((1, space.dim, space.dim))
        space.stamp_fet_matrix(a1, lin_scalar)
        space.stamp_fet_matrix(a2, lin_stacked)
        assert np.array_equal(a1, a2[0])
        b1 = np.zeros(space.dim)
        b2 = np.zeros((1, space.dim))
        space.stamp_fet_rhs(b1, lin_scalar)
        space.stamp_fet_rhs(b2, lin_stacked)
        assert np.array_equal(b1, b2[0])


class TestDenseLuWoodbury:
    """The low-rank update path must agree with the direct dense solve."""

    def _few_fet_circuit(self):
        """One inverter into a long RC ladder: F=2 devices, many nodes."""
        circuit = Circuit("woodbury")
        circuit.add_vsource("vdd", "vdd", "0", 1.1)
        from repro.spice.elements import Pulse

        circuit.add_vsource(
            "vin", "in", "0",
            Pulse(0.0, 1.1, delay=0.1e-9, rise=20e-12, fall=20e-12,
                  width=1e-9),
        )
        circuit.add_mosfet("mp", "out0", "in", "vdd", "vdd",
                           PMOS_45LP, w=0.4e-6)
        circuit.add_mosfet("mn", "out0", "in", "0", "0",
                           NMOS_45LP, w=0.2e-6)
        prev = "out0"
        for k in range(8):
            node = f"n{k}"
            circuit.add_resistor(f"r{k}", prev, node, 500.0)
            circuit.add_capacitor(f"c{k}", node, "0", 5e-15)
            prev = node
        return circuit

    def test_woodbury_path_is_active_and_agrees_with_dense(self):
        circuit = self._few_fet_circuit()
        plan = StampPlan(circuit, gmin=1e-9)
        solver = make_solver("dense_lu", plan.condensed)
        assert isinstance(solver, DenseLU)
        assert solver._use_woodbury, (
            "expected the low-rank path for F=2 devices on a large ladder"
        )
        lu = transient(circuit, 2e-9, 2e-12, record=["n7"],
                       backend="dense_lu")
        dense = transient(circuit, 2e-9, 2e-12, record=["n7"],
                          backend="dense")
        assert np.abs(lu.voltages["n7"] - dense.voltages["n7"]).max() < 1e-9


class TestConvergenceDiagnostics:
    def _nonlinear_system(self):
        circuit = Circuit("diag")
        circuit.add_vsource("vdd", "vdd", "0", 1.1)
        circuit.add_mosfet("mp", "out", "0", "vdd", "vdd",
                           PMOS_45LP, w=0.4e-6)
        circuit.add_mosfet("mn", "out", "vdd", "0", "0",
                           NMOS_45LP, w=0.2e-6)
        return MnaSystem(circuit, NewtonOptions(max_iterations=1))

    def test_error_reports_corner_indices_and_max_dv(self):
        system = self._nonlinear_system()
        b = np.zeros(system.size)
        system.source_rhs(0.0, b)
        with pytest.raises(ConvergenceError) as excinfo:
            system.newton_solve(system.a_linear, b,
                                np.zeros(system.size), label="diag")
        err = excinfo.value
        assert err.corners == [0]
        assert err.max_dv is not None and err.max_dv.shape == (1,)
        assert err.max_dv[0] > 0
        assert "corner 0" in str(err)
        assert "max_dv" in str(err)
        # The worst node is reported by *name*, not MNA index.
        assert len(err.nodes) == 1
        assert err.nodes[0] in ("vdd", "out")
        assert f"at node {err.nodes[0]!r}" in str(err)


class TestGoldenDeltaTParity:
    """Scalar and batched DeltaT paths must keep reproducing the goldens.

    ``tests/data/delta_t_parity.json`` pins the StageDelayEngine's DeltaT
    at nominal process for a grid of resistive-open and leakage faults,
    computed once through the scalar ``transient()`` path and once
    through the batched ``BatchedSimulation`` sweeps.  The regression
    tolerance is well below the paper's 0.1 ps measurement resolution
    but loose enough to absorb BLAS/LAPACK reduction-order differences
    across platforms (observed cross-path deviation: ~2e-16 s).
    """

    #: Fresh recomputation vs the checked-in goldens.
    GOLDEN_TOL = 0.05e-12
    #: Freshly computed scalar vs batched values.
    PARITY_TOL = 0.01e-12

    @pytest.fixture(scope="class")
    def golden(self):
        path = Path(__file__).parent.parent / "data" / "delta_t_parity.json"
        return json.loads(path.read_text())

    @pytest.fixture(scope="class")
    def engine(self, golden):
        from repro.core.engines import StageDelayEngine

        assert golden["engine"]["vdd"] == pytest.approx(1.1)
        return StageDelayEngine(timestep=golden["engine"]["timestep_s"])

    def test_scalar_path_reproduces_goldens(self, golden, engine):
        x = golden["x_open"]
        for r_open, want in zip(golden["r_open_ohm"],
                                golden["scalar"]["open"]):
            got = engine.delta_t(Tsv(fault=ResistiveOpen(r_open, x)))
            assert got == pytest.approx(want, abs=self.GOLDEN_TOL)
        for r_leak, want in zip(golden["r_leak_ohm"],
                                golden["scalar"]["leak"]):
            got = engine.delta_t(Tsv(fault=Leakage(r_leak)))
            assert got == pytest.approx(want, abs=self.GOLDEN_TOL)
        ff = engine.delta_t(Tsv())
        assert ff == pytest.approx(golden["scalar"]["fault_free"],
                                   abs=self.GOLDEN_TOL)

    def test_batched_path_reproduces_goldens(self, golden, engine):
        got_open = engine.delta_t_sweep_ro(golden["r_open_ohm"],
                                           x=golden["x_open"])
        np.testing.assert_allclose(got_open, golden["batched"]["open"],
                                   atol=self.GOLDEN_TOL, rtol=0)
        got_leak = engine.delta_t_sweep_rl(golden["r_leak_ohm"])
        np.testing.assert_allclose(got_leak, golden["batched"]["leak"],
                                   atol=self.GOLDEN_TOL, rtol=0)

    def test_scalar_and_batched_goldens_agree(self, golden):
        scalar = golden["scalar"]["open"] + golden["scalar"]["leak"]
        batched = golden["batched"]["open"] + golden["batched"]["leak"]
        for s, b in zip(scalar, batched):
            assert s == pytest.approx(b, abs=self.PARITY_TOL)

    def test_goldens_are_physical(self, golden):
        """Open DeltaT below fault-free, window leakage above (Fig. 6/8)."""
        ff = golden["scalar"]["fault_free"]
        assert all(v < ff for v in golden["scalar"]["open"])
        opens = golden["scalar"]["open"]
        assert all(a > b for a, b in zip(opens, opens[1:]))


class TestNoDuplicatedIntegratorLogic:
    """The scalar/batched wrappers must not re-implement the stepper."""

    @pytest.mark.parametrize("module", [transient_module, batch_module])
    def test_wrappers_delegate_to_shared_stepper(self, module):
        source = inspect.getsource(module)
        assert "TransientStepper" in source
        # No inner linear solves or companion-model math of their own.
        for token in ("np.linalg.solve", "geq", "ieq", "lu_factor"):
            assert token not in source, (
                f"{module.__name__} re-implements integrator logic "
                f"(found {token!r})"
            )


class TestSparseBackend:
    """The splu-cached CSC backend: pattern, auto-selection, goldens."""

    def test_sparse_pattern_covers_every_stamp_target(self):
        _, circuit = _leakage_stage()
        space = StampPlan(circuit, gmin=1e-9).condensed
        rows, cols = space.sparse_pattern()
        # The static linear assembly must fit entirely in the pattern.
        r, c = np.nonzero(space.a_static)
        pattern = set(zip(rows.tolist(), cols.tolist()))
        assert set(zip(r.tolist(), c.tolist())) <= pattern
        # Plus the full diagonal (gmin / companion stamps land there).
        assert all((d, d) in pattern for d in range(space.dim))

    def test_auto_resolution_by_dimension(self):
        from repro.spice.linalg import SPARSE_AUTO_DIM, resolve_backend

        _, circuit = _leakage_stage()
        space = StampPlan(circuit, gmin=1e-9).condensed
        expected = "sparse" if space.dim >= SPARSE_AUTO_DIM else "dense_lu"
        assert resolve_backend("auto", space) == expected
        assert resolve_backend("dense", space) == "dense"

    def test_make_solver_resolves_auto(self):
        from repro.spice.linalg import SparseLU, DenseLU as _DenseLU

        _, circuit = _leakage_stage()
        space = StampPlan(circuit, gmin=1e-9).condensed
        solver = make_solver("auto", space)
        assert isinstance(solver, (SparseLU, _DenseLU))
        assert isinstance(make_solver("sparse", space), SparseLU)


class TestSparseGoldenParity:
    """Sparse and dense LU reproduce the checked-in DeltaT goldens.

    Same fixture and tolerances as :class:`TestGoldenDeltaTParity`, but
    the transient runs through explicit backend choices: the sparse
    factorization must agree with the dense LU within the cross-path
    tolerance and both must stay on the goldens.
    """

    GOLDEN_TOL = 0.05e-12
    CROSS_TOL = 0.01e-12

    @pytest.fixture(scope="class")
    def golden(self):
        path = Path(__file__).parent.parent / "data" / "delta_t_parity.json"
        return json.loads(path.read_text())

    def _delta_t(self, engine, tsv, backend):
        """Engine DeltaT with an explicit scalar solver backend."""
        half = engine.config.vdd / 2.0
        total = 0.0
        deltas = []
        for bypassed in (False, True):
            circuit, _ = engine._segment_circuit(tsv, bypassed)
            result = transient(
                circuit, engine.stop_time(), engine.timestep,
                record=["din", "dout"], backend=backend,
            )
            win = result.waveform("din")
            wout = result.waveform("dout")
            deltas.append(
                win.propagation_delay_to(wout, half, edge_in="rise",
                                         edge_out="rise")
                + win.propagation_delay_to(wout, half, edge_in="fall",
                                           edge_out="fall")
            )
        return deltas[0] - deltas[1]

    def test_sparse_matches_dense_lu_and_goldens(self, golden):
        from repro.core.engines import StageDelayEngine

        engine = StageDelayEngine(timestep=golden["engine"]["timestep_s"])
        probes = [(Tsv(), golden["scalar"]["fault_free"])] + [
            (Tsv(fault=ResistiveOpen(r, golden["x_open"])), want)
            for r, want in zip(golden["r_open_ohm"][:2],
                               golden["scalar"]["open"][:2])
        ]
        for tsv, want in probes:
            dense = self._delta_t(engine, tsv, "dense_lu")
            sparse = self._delta_t(engine, tsv, "sparse")
            assert sparse == pytest.approx(dense, abs=self.CROSS_TOL)
            assert sparse == pytest.approx(want, abs=self.GOLDEN_TOL)
