"""Unit tests for the content-addressed solve cache."""

import numpy as np
import pytest

from repro.core.tsv import Tsv
from repro.spice import Circuit, DC
from repro.spice.cache import (
    SolveCache,
    cache_disabled,
    circuit_fingerprint,
    fingerprint,
    get_cache,
    memoize,
    use_cache,
)
from repro.spice.montecarlo import ProcessVariation
from repro.spice.netlist import GROUND
from repro.telemetry import use_telemetry


def rc_circuit(r=1000.0, title="rc"):
    c = Circuit(title)
    c.add_vsource("vs", "a", GROUND, DC(1.0))
    c.add_resistor("r1", "a", "b", r)
    c.add_capacitor("c1", "b", GROUND, 1e-12)
    return c


class TestFingerprint:
    def test_deterministic(self):
        parts = ("tag", 1.25, ProcessVariation(), Tsv(), [1, 2, 3])
        assert fingerprint(*parts) == fingerprint(*parts)

    def test_sensitive_to_any_part(self):
        base = fingerprint("tag", 1.25, 100)
        assert fingerprint("tag", 1.25, 101) != base
        assert fingerprint("tag", 1.26, 100) != base
        assert fingerprint("gat", 1.25, 100) != base

    def test_dataclass_field_changes_key(self):
        a = ProcessVariation()
        b = ProcessVariation(sigma_vth=a.sigma_vth * 2)
        assert fingerprint(a) != fingerprint(b)

    def test_ndarray_content_and_shape(self):
        x = np.arange(6, dtype=float)
        assert fingerprint(x) == fingerprint(x.copy())
        assert fingerprint(x) != fingerprint(x.reshape(2, 3))
        y = x.copy()
        y[3] += 1e-15
        assert fingerprint(x) != fingerprint(y)

    def test_float_precision_is_exact(self):
        assert fingerprint(0.1 + 0.2) != fingerprint(0.3)

    def test_dict_ordering_is_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_nesting_depth_guard(self):
        deep: list = []
        node = deep
        for _ in range(20):
            inner: list = []
            node.append(inner)
            node = inner
        with pytest.raises(ValueError):
            fingerprint(deep)


class TestCircuitFingerprint:
    def test_identical_builds_match(self):
        assert circuit_fingerprint(rc_circuit()) == \
            circuit_fingerprint(rc_circuit())

    def test_value_change_misses(self):
        assert circuit_fingerprint(rc_circuit(1000.0)) != \
            circuit_fingerprint(rc_circuit(1001.0))

    def test_circuit_usable_as_key_part(self):
        assert fingerprint(rc_circuit(), 1.1) == fingerprint(rc_circuit(), 1.1)
        assert fingerprint(rc_circuit(), 1.1) != fingerprint(rc_circuit(), 0.8)


class TestSolveCache:
    def test_memoize_computes_once(self):
        cache = SolveCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.memoize("k", compute) == 42
        assert cache.memoize("k", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_fifo(self):
        cache = SolveCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert len(cache) == 2

    def test_stats_and_clear(self):
        cache = SolveCache()
        cache.memoize("k", lambda: 1)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_telemetry_accounting(self):
        cache = SolveCache()
        with use_telemetry() as tele:
            cache.memoize("k", lambda: 1)
            cache.memoize("k", lambda: 1)
        assert tele.count("cache_misses") == 1
        assert tele.count("cache_hits") == 1


class TestScoping:
    def test_use_cache_swaps_and_restores(self):
        outer = get_cache()
        mine = SolveCache()
        with use_cache(mine):
            assert get_cache() is mine
            assert memoize("k", lambda: 7) == 7
            assert memoize("k", lambda: 8) == 7
        assert get_cache() is outer
        assert mine.hits == 1

    def test_cache_disabled_always_computes(self):
        calls = []
        with cache_disabled():
            assert get_cache() is None
            memoize("k", lambda: calls.append(1))
            memoize("k", lambda: calls.append(1))
        assert len(calls) == 2

    def test_flow_characterization_is_shared_through_cache(self):
        from repro.core.engines.registry import spec as engine_spec
        from repro.workloads.flow import ScreeningFlow

        def make():
            return ScreeningFlow(
                engine_spec("analytic"), voltages=(1.1, 0.8),
                characterization_samples=30, seed=11,
            )

        with use_cache(SolveCache()) as cache, use_telemetry() as tele:
            first = make()
            second = make()
        assert cache.hits > 0
        assert tele.count("cache_hits") == cache.hits
        for vdd in (1.1, 0.8):
            assert first.band(vdd).low == second.band(vdd).low
            assert first.band(vdd).high == second.band(vdd).high
