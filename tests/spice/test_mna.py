"""Unit tests for MNA assembly and Newton solver behaviour."""

import numpy as np
import pytest

from repro.spice import Circuit, DC, NMOS_45LP, PMOS_45LP, transient
from repro.spice.mna import ConvergenceError, MnaSystem, NewtonOptions
from repro.spice.dc import dc_operating_point, solve_dc
from repro.spice.netlist import GROUND


def inverter_circuit(vin=0.55):
    c = Circuit()
    c.add_vsource("vdd", "vdd", GROUND, DC(1.1))
    c.add_vsource("vin", "in", GROUND, DC(vin))
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
    c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
    return c


class TestSystemStructure:
    def test_unknown_vector_size(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(1.0))
        c.add_resistor("r1", "a", "b", 10.0)
        system = MnaSystem(c)
        # ground + a + b + one source current
        assert system.size == 4

    def test_linear_matrix_is_symmetric_for_rc(self):
        c = Circuit()
        c.add_resistor("r1", "a", "b", 10.0)
        c.add_resistor("r2", "b", GROUND, 20.0)
        system = MnaSystem(c)
        a = system.a_linear
        assert np.allclose(a, a.T)

    def test_gmin_on_diagonal(self):
        c = Circuit()
        c.add_resistor("r1", "a", GROUND, 1e6)
        system = MnaSystem(c, NewtonOptions(gmin=1e-6))
        idx = c.node_index("a")
        assert system.a_linear[idx, idx] == pytest.approx(1e-6 + 1e-6)

    def test_mosfet_index_arrays(self):
        c = inverter_circuit()
        system = MnaSystem(c)
        assert len(system.fet_d) == 2
        assert len(system._jac_rows) == 2 * 8


class TestNewtonBehaviour:
    def test_insufficient_iterations_raise(self):
        c = inverter_circuit(vin=0.55)
        options = NewtonOptions(max_iterations=1, damping=0.05)
        with pytest.raises(ConvergenceError):
            system = MnaSystem(c, options)
            a = system.a_linear.copy()
            b = np.zeros(system.size)
            system.source_rhs(0.0, b)
            system.newton_solve(a, b, np.zeros(system.size))

    def test_damping_still_converges(self):
        """Heavy damping slows Newton but must not change the answer."""
        loose = dc_operating_point(inverter_circuit(0.3))
        tight = dc_operating_point(
            inverter_circuit(0.3),
            options=NewtonOptions(damping=0.05, max_iterations=500),
        )
        assert loose["out"] == pytest.approx(tight["out"], abs=1e-4)

    def test_gmin_stepping_fallback(self):
        """A deliberately hard start (huge drive, midpoint bias) must be
        rescued by gmin stepping rather than erroring out."""
        c = inverter_circuit(vin=0.55)
        system = MnaSystem(c, NewtonOptions(max_iterations=12))
        x = solve_dc(system)
        out = x[c.node_index("out")]
        assert 0.0 <= out <= 1.1


class TestSourceStamping:
    def test_vsource_current_is_reported(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(2.0))
        c.add_resistor("r1", "a", GROUND, 100.0)
        system = MnaSystem(c)
        x = solve_dc(system)
        # Branch current unknown: V/R = 20 mA flowing out of the source.
        i_src = x[system.num_nodes]
        assert abs(i_src) == pytest.approx(0.02, rel=1e-3)

    def test_two_sources_share_a_node(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(1.0))
        c.add_vsource("v2", "b", GROUND, DC(2.0))
        c.add_resistor("r1", "a", "b", 100.0)
        op = dc_operating_point(c)
        assert op["a"] == pytest.approx(1.0, rel=1e-6)
        assert op["b"] == pytest.approx(2.0, rel=1e-6)


class TestTransientRobustness:
    def test_local_bisection_rescues_sharp_edges(self):
        """A near-instant source edge forces the per-step retry path."""
        c = Circuit()
        from repro.spice import Step
        c.add_vsource("vin", "in", GROUND, Step(0.0, 1.1, t0=0.5e-9,
                                                rise=1e-15))
        c.add_resistor("r1", "in", "out", 1000.0)
        c.add_capacitor("c1", "out", GROUND, 50e-15)
        res = transient(c, 1e-9, 10e-12)
        assert res["out"][-1] == pytest.approx(1.1, abs=0.01)
