"""Unit tests for the sweep helper."""

import numpy as np
import pytest

from repro.spice.sweep import SweepResult, sweep_parameter
from repro.spice.waveform import NoOscillationError


class TestSweepParameter:
    def test_results_aligned_with_values(self):
        sweep = sweep_parameter("x", [1.0, 2.0, 3.0], lambda x: x * 10)
        assert list(sweep.values) == [1.0, 2.0, 3.0]
        assert list(sweep.results) == [10.0, 20.0, 30.0]

    def test_failure_propagates_by_default(self):
        def bad(x):
            raise NoOscillationError("stuck")

        with pytest.raises(NoOscillationError):
            sweep_parameter("x", [1.0], bad)

    def test_nan_on_failure(self):
        def sometimes(x):
            if x > 2:
                raise NoOscillationError("stuck")
            return x

        sweep = sweep_parameter("x", [1.0, 2.0, 3.0], sometimes,
                                nan_on_failure=True)
        assert np.isnan(sweep.results[2])
        assert list(sweep.failed_values()) == [3.0]

    def test_finite_filters_failures(self):
        sweep = SweepResult("x", np.array([1.0, 2.0]),
                            np.array([5.0, np.nan]))
        finite = sweep.finite()
        assert len(finite) == 1
        assert finite.values[0] == 1.0

    def test_iteration_yields_pairs(self):
        sweep = sweep_parameter("x", [1.0, 4.0], lambda x: x + 1)
        assert list(sweep) == [(1.0, 2.0), (4.0, 5.0)]
