"""Unit tests for the process-variation model and MC engine."""

import numpy as np
import pytest

from repro.spice.mosfet import NMOS_45LP
from repro.spice.montecarlo import (
    MonteCarloEngine,
    NOMINAL_PROCESS,
    ProcessSample,
    ProcessVariation,
    nominal_sample,
)


class TestProcessVariation:
    def test_default_sigmas_match_paper(self):
        pv = ProcessVariation()
        assert 3 * pv.sigma_vth == pytest.approx(0.030)       # 30 mV
        assert 3 * pv.sigma_leff_rel == pytest.approx(0.10)   # 10 %

    def test_scaled(self):
        pv = ProcessVariation().scaled(0.5)
        assert pv.sigma_vth == pytest.approx(0.005)
        assert pv.sigma_leff_rel == pytest.approx(0.10 / 6.0)

    def test_nominal_process_has_zero_spread(self):
        assert NOMINAL_PROCESS.sigma_vth == 0.0
        assert NOMINAL_PROCESS.sigma_leff_rel == 0.0


class TestProcessSample:
    def test_nominal_sample_is_identity(self):
        sample = nominal_sample()
        model = sample.perturb(NMOS_45LP)
        assert model.vth == NMOS_45LP.vth
        assert model.lmin == NMOS_45LP.lmin

    def test_perturbation_changes_model(self):
        sample = ProcessVariation().sample(np.random.default_rng(1))
        model = sample.perturb(NMOS_45LP)
        assert model.vth != NMOS_45LP.vth

    def test_same_seed_same_stream(self):
        pv = ProcessVariation()
        s1 = pv.sample(np.random.default_rng(42))
        s2 = pv.sample(np.random.default_rng(42))
        for _ in range(10):
            m1 = s1.perturb(NMOS_45LP)
            m2 = s2.perturb(NMOS_45LP)
            assert m1.vth == m2.vth
            assert m1.lmin == m2.lmin

    def test_draws_counted(self):
        sample = ProcessVariation().sample(np.random.default_rng(0))
        for _ in range(5):
            sample.perturb(NMOS_45LP)
        assert sample.draws == 5

    def test_clamped_at_four_sigma(self):
        pv = ProcessVariation(sigma_vth=0.01, sigma_leff_rel=0.05)
        sample = pv.sample(np.random.default_rng(0))
        for _ in range(2000):
            model = sample.perturb(NMOS_45LP)
            assert abs(model.vth - NMOS_45LP.vth) <= 4 * 0.01 + 1e-12
            assert abs(model.lmin / NMOS_45LP.lmin - 1.0) <= 4 * 0.05 + 1e-9

    def test_distribution_statistics(self):
        pv = ProcessVariation(sigma_vth=0.01, sigma_leff_rel=0.0)
        sample = pv.sample(np.random.default_rng(7))
        shifts = np.array([
            sample.perturb(NMOS_45LP).vth - NMOS_45LP.vth
            for _ in range(3000)
        ])
        assert abs(shifts.mean()) < 0.001
        assert shifts.std() == pytest.approx(0.01, rel=0.1)


class TestMonteCarloEngine:
    def test_reproducible_runs(self):
        engine = MonteCarloEngine(ProcessVariation(), seed=3)
        f = lambda s: s.perturb(NMOS_45LP).vth
        r1 = engine.run(f, 20)
        r2 = MonteCarloEngine(ProcessVariation(), seed=3).run(f, 20)
        assert np.array_equal(r1, r2)

    def test_different_seeds_differ(self):
        f = lambda s: s.perturb(NMOS_45LP).vth
        r1 = MonteCarloEngine(ProcessVariation(), seed=1).run(f, 10)
        r2 = MonteCarloEngine(ProcessVariation(), seed=2).run(f, 10)
        assert not np.array_equal(r1, r2)

    def test_skip_failures_records_nan(self):
        def sometimes_fails(sample):
            value = sample.perturb(NMOS_45LP).vth
            if value > NMOS_45LP.vth:
                raise RuntimeError("boom")
            return value

        engine = MonteCarloEngine(ProcessVariation(), seed=5)
        results = engine.run(sometimes_fails, 50, skip_failures=True)
        assert np.isnan(results).any()
        assert np.isfinite(results).any()

    def test_failures_propagate_by_default(self):
        def always_fails(sample):
            raise RuntimeError("boom")

        engine = MonteCarloEngine(ProcessVariation(), seed=5)
        with pytest.raises(RuntimeError):
            engine.run(always_fails, 3)


class TestSeedSpawning:
    """Sharded / restarted runs must reproduce the serial draw stream."""

    MEASURE = staticmethod(lambda s: s.perturb(NMOS_45LP).vth)

    def test_child_seeds_are_stable(self):
        engine = MonteCarloEngine(ProcessVariation(), seed=9)
        a = engine.child_seeds(8)
        b = engine.child_seeds(8)
        assert len(a) == 8
        assert [s.generate_state(2).tolist() for s in a] == \
            [s.generate_state(2).tolist() for s in b]

    def test_offset_slice_matches_serial_run(self):
        engine = MonteCarloEngine(ProcessVariation(), seed=11)
        serial = engine.run(self.MEASURE, 12)
        # Two workers covering [0, 5) and [5, 12) reproduce the serial
        # stream exactly, sample for sample.
        first = engine.run(self.MEASURE, 5)
        second = engine.run(self.MEASURE, 7, sample_offset=5)
        assert np.array_equal(np.concatenate([first, second]), serial)

    def test_prespawned_seeds_match_on_demand(self):
        engine = MonteCarloEngine(ProcessVariation(), seed=13)
        seeds = engine.child_seeds(10)
        on_demand = engine.run(self.MEASURE, 10)
        prespawned = engine.run(self.MEASURE, 10, child_seeds=seeds)
        tail = engine.run(self.MEASURE, 4, sample_offset=6,
                          child_seeds=seeds)
        assert np.array_equal(on_demand, prespawned)
        assert np.array_equal(tail, on_demand[6:])

    def test_samples_are_independent(self):
        engine = MonteCarloEngine(ProcessVariation(), seed=17)
        results = engine.run(self.MEASURE, 20)
        assert len(np.unique(results)) == 20

    def test_nominal_sample_accepts_seed(self):
        sample = nominal_sample(seed=123)
        assert isinstance(sample, ProcessSample)
        model = sample.perturb(NMOS_45LP)
        assert model.vth == NMOS_45LP.vth
        assert model.lmin == NMOS_45LP.lmin
