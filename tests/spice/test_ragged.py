"""Ragged cross-topology packing: bit-identity, families, pack modes.

The contract under test is the one the screening service's family
coalescing rests on: packing mixed-topology :class:`BatchedSimulation`
members into one shared time loop (``pack="bucket"``) must reproduce
every member's standalone ``transient()`` traces *bit-for-bit* -- not
approximately -- because dimension-bucketed stacked LAPACK solves are
per-corner transparent.  The padded single-solve mode only promises
solver-precision agreement.
"""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    DC,
    NMOS_45LP,
    PMOS_45LP,
    RaggedPack,
    Step,
    TopologyFamily,
    ragged_transient,
)
from repro.spice.batch import BatchParameters, BatchedSimulation
from repro.spice.mna import NewtonOptions
from repro.spice.montecarlo import ProcessVariation
from repro.spice.netlist import GROUND
from repro.telemetry import use_telemetry


def rc_circuit(r=1000.0):
    c = Circuit("rc")
    c.add_vsource("vin", "in", GROUND, Step(0.0, 1.0, t0=20e-12, rise=1e-13))
    c.add_resistor("r1", "in", "out", r)
    c.add_capacitor("c1", "out", GROUND, 100e-15)
    return c


def inverter_circuit(vdd=1.1, series_r=None):
    """CMOS inverter; an optional series resistor adds a node (new dim)."""
    c = Circuit("inv")
    drain = "mid" if series_r is not None else "out"
    c.add_vsource("vdd", "vdd", GROUND, DC(vdd))
    c.add_vsource("vin", "in", GROUND, Step(0.0, vdd, t0=50e-12, rise=20e-12))
    c.add_mosfet("mp", drain, "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
    c.add_mosfet("mn", drain, "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
    if series_r is not None:
        c.add_resistor("ro", "mid", "out", series_r)
    c.add_capacitor("cl", "out", GROUND, 2e-15)
    return c


def mixed_sims():
    """Four members spanning linear/nonlinear, three distinct dims."""
    var = ProcessVariation()
    sims = []
    for i, circuit in enumerate([
        rc_circuit(),
        inverter_circuit(),
        inverter_circuit(series_r=5e3),
        inverter_circuit(vdd=0.9),
    ]):
        params = (
            BatchParameters.monte_carlo(circuit, var, 3, seed=11 + i)
            if circuit.mosfets else BatchParameters.nominal(2)
        )
        sims.append(BatchedSimulation(circuit, params))
    return sims


class TestBucketBitIdentity:
    def test_mixed_topologies_match_standalone_exactly(self):
        sims = mixed_sims()
        solo = [s.transient(400e-12, 1e-12, record=["out"]) for s in sims]
        packed = ragged_transient(sims, 400e-12, 1e-12, record=["out"])
        assert len(packed) == len(sims)
        for a, b in zip(solo, packed):
            assert np.array_equal(a.time, b.time)
            assert np.array_equal(a.voltages["out"], b.voltages["out"])
            assert a.num_corners == b.num_corners

    def test_per_corner_resistor_overrides_pack_bit_identically(self):
        # A stacked (S, m, m) base matrix member next to shared-base ones.
        values = np.array([500.0, 1000.0, 2000.0])
        params = BatchParameters.nominal(3).with_resistor("r1", values)
        sims = [
            BatchedSimulation(rc_circuit(), params),
            BatchedSimulation(inverter_circuit(),
                              BatchParameters.nominal(2)),
        ]
        solo = [s.transient(300e-12, 1e-12, record=["out"]) for s in sims]
        packed = ragged_transient(sims, 300e-12, 1e-12, record=["out"])
        for a, b in zip(solo, packed):
            assert np.array_equal(a.voltages["out"], b.voltages["out"])

    def test_single_member_pack_is_standalone(self):
        sim = BatchedSimulation(rc_circuit(), BatchParameters.nominal(2))
        solo = sim.transient(200e-12, 1e-12, record=["out"])
        packed = ragged_transient([sim], 200e-12, 1e-12, record=["out"])
        assert np.array_equal(
            solo.voltages["out"], packed[0].voltages["out"]
        )

    def test_backward_euler_method_matches(self):
        sims = [
            BatchedSimulation(rc_circuit(), BatchParameters.nominal(2)),
            BatchedSimulation(rc_circuit(500.0), BatchParameters.nominal(1)),
        ]
        solo = [
            s.transient(200e-12, 1e-12, record=["out"], method="be")
            for s in sims
        ]
        packed = ragged_transient(
            sims, 200e-12, 1e-12, record=["out"], method="be"
        )
        for a, b in zip(solo, packed):
            assert np.array_equal(a.voltages["out"], b.voltages["out"])


class TestPadMode:
    def test_padded_solves_agree_to_solver_precision(self):
        sims = mixed_sims()
        solo = [s.transient(400e-12, 1e-12, record=["out"]) for s in sims]
        packed = ragged_transient(
            sims, 400e-12, 1e-12, record=["out"], pack="pad"
        )
        for a, b in zip(solo, packed):
            np.testing.assert_allclose(
                b.voltages["out"], a.voltages["out"],
                rtol=1e-6, atol=1e-9,
            )

    def test_pad_waste_model(self):
        sims = mixed_sims()
        pack = RaggedPack(sims)
        solved = sum(
            m.num_corners * m.space.dim ** 3 for m in pack.members
        )
        padded = pack.num_corners * pack.max_dim ** 3
        assert pack.pad_waste == pytest.approx(1.0 - solved / padded)
        assert 0.0 < pack.pad_waste < 1.0

    def test_uniform_pack_wastes_nothing(self):
        sims = [
            BatchedSimulation(rc_circuit(r), BatchParameters.nominal(2))
            for r in (500.0, 1000.0)
        ]
        assert RaggedPack(sims).pad_waste == 0.0


class TestTopologyFamily:
    def test_values_do_not_split_families(self):
        a = TopologyFamily.of(rc_circuit(500.0))
        b = TopologyFamily.of(rc_circuit(2000.0))
        assert a == b
        assert hash(a) == hash(b)

    def test_supply_does_not_split_families(self):
        a = TopologyFamily.of(inverter_circuit(1.1))
        b = TopologyFamily.of(inverter_circuit(0.9))
        assert a == b

    def test_structure_splits_families(self):
        a = TopologyFamily.of(inverter_circuit())
        b = TopologyFamily.of(inverter_circuit(series_r=5e3))
        assert a != b
        assert b.num_resistors == a.num_resistors + 1
        assert b.dim > a.dim

    def test_of_accepts_precompiled_plan(self):
        sim = BatchedSimulation(rc_circuit(), BatchParameters.nominal(1))
        assert TopologyFamily.of(sim.circuit, sim.plan) == \
            TopologyFamily.of(rc_circuit())

    def test_pack_exposes_member_families(self):
        sims = mixed_sims()
        families = RaggedPack(sims).families
        assert len(families) == len(sims)
        assert families[1] != families[2]


class TestValidation:
    def test_empty_pack_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RaggedPack([])

    def test_mismatched_newton_options_rejected(self):
        sims = [
            BatchedSimulation(rc_circuit(), BatchParameters.nominal(1)),
            BatchedSimulation(
                rc_circuit(), BatchParameters.nominal(1),
                options=NewtonOptions(damping=0.2),
            ),
        ]
        with pytest.raises(ValueError, match="member 1.*Newton options"):
            RaggedPack(sims)

    def test_missing_record_node_names_the_member(self):
        sims = [
            BatchedSimulation(inverter_circuit(series_r=5e3),
                              BatchParameters.nominal(1)),
            BatchedSimulation(rc_circuit(), BatchParameters.nominal(1)),
        ]
        with pytest.raises(ValueError, match=r"member 1.*\['mid'\]"):
            ragged_transient(sims, 100e-12, 1e-12, record=["out", "mid"])

    def test_default_record_rejected(self):
        sims = [BatchedSimulation(rc_circuit(), BatchParameters.nominal(1))]
        with pytest.raises(ValueError, match="node names"):
            ragged_transient(sims, 100e-12, 1e-12)

    def test_unknown_pack_mode_rejected(self):
        sims = [BatchedSimulation(rc_circuit(), BatchParameters.nominal(1))]
        with pytest.raises(ValueError, match="pack mode"):
            ragged_transient(sims, 100e-12, 1e-12, record=["out"],
                             pack="diagonal")


class TestTelemetry:
    def test_pack_counters_and_waste_are_reported(self):
        sims = mixed_sims()
        with use_telemetry() as tele:
            ragged_transient(sims, 100e-12, 1e-12, record=["out"])
        assert tele.count("ragged.packs") == 1
        assert tele.histogram("ragged.pack_members").max == len(sims)
        assert tele.histogram("ragged.pack_corners").max == sum(
            s.num_corners for s in sims
        )
        assert tele.histogram("ragged.pad_waste").count == 1
        assert tele.count("ragged.bucket_solves") > 0

    def test_pad_mode_counts_padded_solves(self):
        sims = mixed_sims()
        with use_telemetry() as tele:
            ragged_transient(
                sims, 100e-12, 1e-12, record=["out"], pack="pad"
            )
        assert tele.count("ragged.padded_solves") > 0
        assert tele.count("ragged.bucket_solves") == 0
