"""Unit tests for the EKV MOSFET model."""

import math

import numpy as np
import pytest

from repro.spice.mosfet import (
    Mosfet,
    MosfetModel,
    NMOS_45LP,
    PMOS_45LP,
    THERMAL_VOLTAGE,
    evaluate_mosfets,
    sigmoid,
    softplus,
)


def eval_single(model, vd, vg, vs, vb, w=1e-6):
    fet = Mosfet("m", "d", "g", "s", "b", model, w=w)
    i_s = 2.0 * model.n * fet.beta * THERMAL_VOLTAGE**2
    arrays = [np.array([x]) for x in (vd, vg, vs, vb)]
    i_d, g_d, g_g, g_s, g_b = evaluate_mosfets(
        np.array([model.polarity]), np.array([model.vth]),
        np.array([model.n]), np.array([i_s]), np.array([model.lam]),
        *arrays,
    )
    return float(i_d[0]), float(g_d[0]), float(g_g[0]), float(g_s[0]), float(g_b[0])


class TestNumericHelpers:
    def test_softplus_matches_log1p_exp(self):
        x = np.array([-5.0, 0.0, 3.0])
        assert np.allclose(softplus(x), np.log1p(np.exp(x)))

    def test_softplus_linear_for_large_inputs(self):
        assert float(softplus(np.array([100.0]))[0]) == pytest.approx(100.0)

    def test_sigmoid_symmetry(self):
        assert float(sigmoid(np.array([2.0]))[0]) + float(
            sigmoid(np.array([-2.0]))[0]
        ) == pytest.approx(1.0)

    def test_sigmoid_extremes_do_not_overflow(self):
        assert float(sigmoid(np.array([-1000.0]))[0]) == pytest.approx(0.0)
        assert float(sigmoid(np.array([1000.0]))[0]) == pytest.approx(1.0)


class TestNmosCurrents:
    def test_current_increases_with_vgs(self):
        currents = [
            eval_single(NMOS_45LP, 1.1, vg, 0.0, 0.0)[0]
            for vg in (0.4, 0.6, 0.8, 1.0)
        ]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_zero_vds_zero_current(self):
        i_d, *_ = eval_single(NMOS_45LP, 0.5, 1.1, 0.5, 0.0)
        assert i_d == pytest.approx(0.0, abs=1e-12)

    def test_reverse_vds_negative_current(self):
        i_d, *_ = eval_single(NMOS_45LP, 0.0, 1.1, 0.5, 0.0)
        assert i_d < 0

    def test_off_current_is_picoamp_scale(self):
        i_d, *_ = eval_single(NMOS_45LP, 1.1, 0.0, 0.0, 0.0, w=0.4e-6)
        assert 0 < i_d < 1e-9  # low-power flavour: well under a nA

    def test_saturation_current_positive_conductances(self):
        _, g_d, g_g, g_s, g_b = eval_single(NMOS_45LP, 1.1, 1.1, 0.0, 0.0)
        assert g_d > 0
        assert g_g > 0
        assert g_s < 0

    def test_translation_invariance_of_conductances(self):
        """Shifting every terminal equally leaves the current unchanged."""
        i_1, *_ = eval_single(NMOS_45LP, 1.1, 1.1, 0.0, 0.0)
        i_2, *_ = eval_single(NMOS_45LP, 1.3, 1.3, 0.2, 0.2)
        assert i_2 == pytest.approx(i_1, rel=1e-9)

    def test_bulk_conductance_closes_the_sum(self):
        _, g_d, g_g, g_s, g_b = eval_single(NMOS_45LP, 0.8, 0.9, 0.1, 0.0)
        assert g_d + g_g + g_s + g_b == pytest.approx(0.0, abs=1e-15)


class TestDerivativesAgainstNumeric:
    @pytest.mark.parametrize("terminal", ["vd", "vg", "vs", "vb"])
    @pytest.mark.parametrize("model", [NMOS_45LP, PMOS_45LP],
                             ids=["nmos", "pmos"])
    def test_analytic_matches_finite_difference(self, terminal, model):
        base = dict(vd=0.7, vg=0.9, vs=0.1, vb=0.0)
        if model.polarity < 0:
            base = dict(vd=0.3, vg=0.2, vs=1.0, vb=1.1)
        h = 1e-6
        lo = dict(base)
        hi = dict(base)
        lo[terminal] -= h
        hi[terminal] += h
        i_lo = eval_single(model, **lo)[0]
        i_hi = eval_single(model, **hi)[0]
        numeric = (i_hi - i_lo) / (2 * h)
        idx = {"vd": 1, "vg": 2, "vs": 3, "vb": 4}[terminal]
        analytic = eval_single(model, **base)[idx]
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-12)


class TestPmosMirror:
    def test_pmos_conducts_with_low_gate(self):
        # Source at vdd, gate at 0, drain at 0: current flows source->drain,
        # i.e. drain current (d->s) is negative.
        i_d, *_ = eval_single(PMOS_45LP, 0.0, 0.0, 1.1, 1.1)
        assert i_d < 0

    def test_pmos_off_with_high_gate(self):
        i_d, *_ = eval_single(PMOS_45LP, 0.0, 1.1, 1.1, 1.1)
        assert abs(i_d) < 1e-9

    def test_mirror_symmetry_with_nmos(self):
        """A PMOS at mirrored voltages carries the negated NMOS current."""
        nmos = NMOS_45LP
        pmos = MosfetModel(**{**nmos.__dict__, "name": "p", "polarity": -1})
        i_n, *_ = eval_single(nmos, 0.8, 1.0, 0.0, 0.0)
        i_p, *_ = eval_single(pmos, -0.8, -1.0, 0.0, 0.0)
        assert i_p == pytest.approx(-i_n, rel=1e-12)


class TestModelHelpers:
    def test_with_variation_shifts_vth(self):
        model = NMOS_45LP.with_variation(dvth=0.02)
        assert model.vth == pytest.approx(NMOS_45LP.vth + 0.02)

    def test_with_variation_scales_length(self):
        model = NMOS_45LP.with_variation(dl_rel=0.1)
        assert model.lmin == pytest.approx(NMOS_45LP.lmin * 1.1)

    def test_saturation_current_monotonic_in_vdd(self):
        currents = [NMOS_45LP.saturation_current(1e-6, v)
                    for v in (0.7, 0.9, 1.1)]
        assert currents[0] < currents[1] < currents[2]

    def test_effective_resistance_drops_with_vdd(self):
        r_lo = NMOS_45LP.effective_resistance(1e-6, 0.75)
        r_hi = NMOS_45LP.effective_resistance(1e-6, 1.1)
        assert r_hi < r_lo

    def test_triode_resistance_below_effective(self):
        r_tri = NMOS_45LP.triode_resistance(1e-6, 1.1)
        r_eff = NMOS_45LP.effective_resistance(1e-6, 1.1)
        assert 0 < r_tri < r_eff

    def test_vth_must_be_positive_magnitude(self):
        with pytest.raises(ValueError):
            MosfetModel(**{**NMOS_45LP.__dict__, "vth": -0.4})

    def test_polarity_validated(self):
        with pytest.raises(ValueError):
            MosfetModel(**{**NMOS_45LP.__dict__, "polarity": 2})
