"""Unit tests for passive elements and source waveforms."""

import math

import pytest

from repro.spice.elements import (
    Capacitor,
    DC,
    PieceWiseLinear,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)


class TestDC:
    def test_constant_value(self):
        src = DC(1.1)
        assert src.value(0.0) == 1.1
        assert src.value(1e-3) == 1.1

    def test_dc_value_matches(self):
        assert DC(-0.5).dc_value() == -0.5


class TestStep:
    def test_before_transition(self):
        step = Step(0.0, 1.0, t0=1e-9, rise=1e-10)
        assert step.value(0.0) == 0.0
        assert step.value(1e-9) == 0.0

    def test_after_transition(self):
        step = Step(0.0, 1.0, t0=1e-9, rise=1e-10)
        assert step.value(1.2e-9) == 1.0

    def test_mid_ramp_is_linear(self):
        step = Step(0.0, 1.0, t0=0.0, rise=1e-9)
        assert step.value(0.5e-9) == pytest.approx(0.5)

    def test_falling_step(self):
        step = Step(1.0, 0.0, t0=0.0, rise=1e-9)
        assert step.value(0.25e-9) == pytest.approx(0.75)


class TestPulse:
    def _pulse(self, **kw):
        defaults = dict(v1=0.0, v2=1.0, delay=1e-9, rise=1e-10,
                        fall=1e-10, width=2e-9, period=0.0)
        defaults.update(kw)
        return Pulse(**defaults)

    def test_initial_level(self):
        assert self._pulse().value(0.0) == 0.0

    def test_plateau(self):
        assert self._pulse().value(2e-9) == 1.0

    def test_fall_back(self):
        pulse = self._pulse()
        t_after = 1e-9 + 1e-10 + 2e-9 + 1e-10 + 1e-12
        assert pulse.value(t_after) == 0.0

    def test_periodic_repeats(self):
        pulse = self._pulse(period=10e-9)
        assert pulse.value(2e-9) == pulse.value(12e-9)

    def test_mid_rise(self):
        pulse = self._pulse()
        assert pulse.value(1e-9 + 0.5e-10) == pytest.approx(0.5)

    def test_mid_fall(self):
        pulse = self._pulse()
        t = 1e-9 + 1e-10 + 2e-9 + 0.5e-10
        assert pulse.value(t) == pytest.approx(0.5)


class TestPieceWiseLinear:
    def test_interpolation(self):
        pwl = PieceWiseLinear([(0.0, 0.0), (1.0, 2.0)])
        assert pwl.value(0.5) == pytest.approx(1.0)

    def test_clamps_outside_range(self):
        pwl = PieceWiseLinear([(1.0, 3.0), (2.0, 5.0)])
        assert pwl.value(0.0) == 3.0
        assert pwl.value(10.0) == 5.0

    def test_vertical_segment_takes_later_value(self):
        pwl = PieceWiseLinear([(0.0, 0.0), (1.0, 1.0), (1.0, 5.0), (2.0, 5.0)])
        assert pwl.value(1.5) == pytest.approx(5.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PieceWiseLinear([])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PieceWiseLinear([(1.0, 0.0), (0.5, 1.0)])


class TestPassives:
    def test_resistor_conductance(self):
        assert Resistor("r1", "a", "b", 500.0).conductance == pytest.approx(2e-3)

    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", 0.0)
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", -5.0)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "b", -1e-15)

    def test_capacitor_allows_zero(self):
        assert Capacitor("c0", "a", "b", 0.0).capacitance == 0.0

    def test_vsource_default_waveform_is_zero_dc(self):
        src = VoltageSource("v1", "p", "n")
        assert src.waveform.value(5.0) == 0.0
