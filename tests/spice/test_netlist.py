"""Unit tests for the Circuit container."""

import pytest

from repro.spice import Circuit, DC, NMOS_45LP, PMOS_45LP
from repro.spice.netlist import GROUND


class TestNodes:
    def test_ground_is_index_zero(self):
        assert Circuit().node_index(GROUND) == 0

    def test_nodes_register_in_order(self):
        c = Circuit()
        c.add_resistor("r1", "a", "b", 1.0)
        assert c.nodes == [GROUND, "a", "b"]

    def test_num_nodes_includes_ground(self):
        c = Circuit()
        c.add_resistor("r1", "a", GROUND, 1.0)
        assert c.num_nodes == 2

    def test_has_node(self):
        c = Circuit()
        c.add_capacitor("c1", "x", GROUND, 1e-15)
        assert c.has_node("x")
        assert not c.has_node("y")


class TestElementRegistration:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_resistor("e1", "a", "b", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            c.add_capacitor("e1", "a", "b", 1e-15)

    def test_element_count(self):
        c = Circuit()
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_capacitor("c1", "a", GROUND, 1e-15)
        c.add_vsource("v1", "a", GROUND, DC(1.0))
        counts = c.element_count()
        assert counts["resistors"] == 1
        assert counts["capacitors"] == 1
        assert counts["vsources"] == 1
        assert counts["mosfets"] == 0

    def test_vsource_accepts_float(self):
        c = Circuit()
        src = c.add_vsource("v1", "a", GROUND, 1.2)
        assert src.waveform.value(0.0) == 1.2

    def test_isource_accepts_float(self):
        c = Circuit()
        src = c.add_isource("i1", "a", GROUND, 1e-6)
        assert src.waveform.value(0.0) == 1e-6


class TestMosfetRegistration:
    def test_parasitics_added_by_default(self):
        c = Circuit()
        c.add_mosfet("m1", "d", "g", "s", GROUND, NMOS_45LP, w=1e-6)
        # gate, gate-drain, gate-source, drain junction, source junction
        assert len(c.capacitors) == 5

    def test_parasitics_can_be_disabled(self):
        c = Circuit()
        c.add_mosfet("m1", "d", "g", "s", GROUND, NMOS_45LP, w=1e-6,
                     parasitics=False)
        assert len(c.capacitors) == 0

    def test_find_mosfet(self):
        c = Circuit()
        c.add_mosfet("m1", "d", "g", "s", GROUND, NMOS_45LP, w=1e-6)
        assert c.find_mosfet("m1").w == 1e-6
        assert c.find_mosfet("nope") is None

    def test_gate_capacitance_scales_with_width(self):
        c = Circuit()
        small = c.add_mosfet("m1", "d", "g", "s", GROUND, NMOS_45LP,
                             w=0.4e-6, parasitics=False)
        big = c.add_mosfet("m2", "d", "g", "s", GROUND, NMOS_45LP,
                           w=0.8e-6, parasitics=False)
        assert big.gate_capacitance == pytest.approx(2 * small.gate_capacitance)

    def test_total_capacitance_at_node(self):
        c = Circuit()
        c.add_capacitor("c1", "x", GROUND, 10e-15)
        c.add_capacitor("c2", "x", "y", 5e-15)
        c.add_capacitor("c3", "y", GROUND, 7e-15)
        assert c.total_capacitance_at("x") == pytest.approx(15e-15)


class TestMosfetValidation:
    def test_rejects_zero_width(self):
        c = Circuit()
        with pytest.raises(ValueError, match="width"):
            c.add_mosfet("m1", "d", "g", "s", GROUND, NMOS_45LP, w=0.0)

    def test_default_length_is_lmin(self):
        c = Circuit()
        fet = c.add_mosfet("m1", "d", "g", "s", GROUND, PMOS_45LP, w=1e-6)
        assert fet.l == PMOS_45LP.lmin
