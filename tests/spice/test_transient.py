"""Unit tests for transient analysis against closed-form solutions."""

import math

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    DC,
    NMOS_45LP,
    PMOS_45LP,
    Pulse,
    Step,
    transient,
)
from repro.spice.netlist import GROUND


def rc_circuit(r=1000.0, c=100e-15, v=1.0, t0=50e-12):
    circuit = Circuit()
    circuit.add_vsource("vin", "in", GROUND, Step(0.0, v, t0=t0, rise=1e-13))
    circuit.add_resistor("r1", "in", "out", r)
    circuit.add_capacitor("c1", "out", GROUND, c)
    return circuit


class TestRcAccuracy:
    def test_charge_curve_matches_exponential(self):
        r, c, v, t0 = 1000.0, 100e-15, 1.0, 50e-12
        res = transient(rc_circuit(r, c, v, t0), 800e-12, 0.5e-12)
        tau = r * c
        for t_probe in (150e-12, 300e-12, 500e-12):
            expected = v * (1.0 - math.exp(-(t_probe - t0) / tau))
            got = res.waveform("out").value_at(t_probe)
            assert got == pytest.approx(expected, abs=0.01)

    def test_halfway_crossing_time(self):
        r, c = 2000.0, 59e-15
        res = transient(rc_circuit(r, c), 800e-12, 0.5e-12)
        t50 = res.waveform("out").crossings(0.5, "rise")[0] - 50e-12
        assert t50 == pytest.approx(0.6931 * r * c, rel=0.03)

    def test_be_and_trap_agree(self):
        kw = dict(stop_time=600e-12, timestep=1e-12)
        out_trap = transient(rc_circuit(), method="trap", **kw)["out"]
        out_be = transient(rc_circuit(), method="be", **kw)["out"]
        assert np.max(np.abs(out_trap - out_be)) < 0.03

    def test_finer_steps_converge(self):
        coarse = transient(rc_circuit(), 600e-12, 4e-12)
        fine = transient(rc_circuit(), 600e-12, 0.5e-12)
        v_coarse = coarse.waveform("out").value_at(300e-12)
        v_fine = fine.waveform("out").value_at(300e-12)
        assert v_coarse == pytest.approx(v_fine, abs=0.02)


class TestChargeConservation:
    def test_floating_cap_holds_ic_voltage(self):
        c = Circuit()
        c.add_capacitor("c1", "x", GROUND, 1e-12)
        c.add_resistor("rbig", "x", GROUND, 1e12)
        res = transient(c, 1e-9, 1e-12, ics={"x": 0.7})
        assert res["x"][-1] == pytest.approx(0.7, abs=1e-3)

    def test_two_cap_charge_sharing(self):
        """1 pF at 1 V shared with 1 pF at 0 V settles at 0.5 V."""
        c = Circuit()
        c.add_capacitor("c1", "a", GROUND, 1e-12)
        c.add_capacitor("c2", "b", GROUND, 1e-12)
        c.add_resistor("rshare", "a", "b", 1000.0)
        res = transient(c, 20e-9, 10e-12, ics={"a": 1.0, "b": 0.0})
        assert res["a"][-1] == pytest.approx(0.5, abs=0.01)
        assert res["b"][-1] == pytest.approx(0.5, abs=0.01)


class TestValidation:
    def test_rejects_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            transient(rc_circuit(), 1e-9, 1e-12, method="gear")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), -1e-9, 1e-12)
        with pytest.raises(ValueError):
            transient(rc_circuit(), 1e-9, 0.0)

    def test_record_subset(self):
        res = transient(rc_circuit(), 200e-12, 1e-12, record=["out"])
        assert "out" in res.voltages
        assert "in" not in res.voltages


class TestInverterTransient:
    def _inverter_circuit(self, vdd=1.1):
        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(vdd))
        c.add_vsource(
            "vin", "in", GROUND,
            Pulse(0.0, vdd, delay=100e-12, rise=20e-12, fall=20e-12,
                  width=400e-12),
        )
        c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
        c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
        c.add_capacitor("cl", "out", GROUND, 2e-15)
        return c

    def test_output_inverts(self):
        res = transient(self._inverter_circuit(), 1e-9, 1e-12)
        w_out = res.waveform("out")
        assert w_out.value_at(50e-12) > 1.0     # input low -> output high
        assert w_out.value_at(300e-12) < 0.1    # input high -> output low

    def test_propagation_delay_is_picoseconds(self):
        res = transient(self._inverter_circuit(), 1e-9, 0.5e-12)
        delay = res.waveform("in").propagation_delay_to(
            res.waveform("out"), 0.55, edge_in="rise", edge_out="fall"
        )
        assert 2e-12 < delay < 60e-12

    def test_rail_to_rail_swing(self):
        res = transient(self._inverter_circuit(), 1e-9, 1e-12)
        out = res["out"]
        # Small Miller overshoot past the rails is physical (gate-drain
        # overlap coupling), hence the asymmetric tolerance.
        assert out.max() == pytest.approx(1.1, abs=0.05)
        assert out.min() == pytest.approx(0.0, abs=0.05)
