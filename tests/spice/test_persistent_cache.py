"""Durability and concurrency tests for :class:`PersistentSolveCache`.

The persistent store's contract is stronger than the in-memory cache's:
it is shared by wafer worker *processes*, survives service restarts, and
must degrade -- never crash, never return garbage -- when the file
underneath it is torn, truncated, or replaced with noise.  These tests
exercise exactly those properties:

* N processes hammering one store concurrently corrupt nothing;
* a torn row (checksum mismatch) reads as a miss and is dropped;
* a garbage store file degrades to recompute-with-warning, once;
* instances pickle as (path, max_entries) and reconnect on unpickle;
* eviction is oldest-written-first and telemetry-accounted.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sqlite3
import warnings

import pytest

from repro.spice.cache import (
    PersistentSolveCache,
    fingerprint,
    install_cache,
    memoize,
    use_cache,
)
from repro.telemetry import Telemetry, use_telemetry

#: Keys shared by every hammer worker plus a per-worker private range.
_SHARED_KEYS = 8
_PRIVATE_KEYS = 4
_HAMMER_WORKERS = 4
_HAMMER_ROUNDS = 5


def _expected(key: str) -> float:
    return float(int(key.split(":")[-1]) * 1.5)


def _hammer(path: str, worker: int, failures) -> None:
    """Worker body: repeatedly memoize shared and private keys."""
    cache = PersistentSolveCache(path)
    try:
        for _ in range(_HAMMER_ROUNDS):
            for i in range(_SHARED_KEYS):
                key = f"shared:{i}"
                value = cache.memoize(key, lambda i=i: _expected(key))
                if value != _expected(key):
                    failures.put((worker, key, value))
            for i in range(_PRIVATE_KEYS):
                key = f"private:{worker}:{i}"
                value = cache.memoize(key, lambda i=i: _expected(key))
                if value != _expected(key):
                    failures.put((worker, key, value))
        if cache.degraded:
            failures.put((worker, "degraded", True))
    finally:
        cache.close()


class TestConcurrency:
    def test_parallel_processes_never_corrupt_the_store(self, tmp_path):
        path = str(tmp_path / "hammer.sqlite")
        ctx = multiprocessing.get_context("fork")
        failures = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer, args=(path, w, failures))
            for w in range(_HAMMER_WORKERS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert failures.empty(), failures.get()
        # The survivors' union is exactly the shared + private key sets,
        # every value intact.
        cache = PersistentSolveCache(path)
        assert len(cache) == (
            _SHARED_KEYS + _HAMMER_WORKERS * _PRIVATE_KEYS
        )
        for i in range(_SHARED_KEYS):
            assert cache.lookup(f"shared:{i}") == _expected(f"shared:{i}")
        assert not cache.degraded

    def test_forked_child_reopens_the_connection(self, tmp_path):
        cache = PersistentSolveCache(str(tmp_path / "fork.sqlite"))
        cache.store("parent", 1.0)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()

        def child() -> None:
            # Same instance object, different pid: the connection must
            # be re-established, not shared across the fork.
            queue.put(cache.lookup("parent"))
            cache.store("child", 2.0)

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0
        assert queue.get(timeout=5) == 1.0
        assert cache.lookup("child") == 2.0


class TestTornRows:
    def test_checksum_mismatch_reads_as_miss_and_drops_the_row(
        self, tmp_path
    ):
        path = str(tmp_path / "torn.sqlite")
        cache = PersistentSolveCache(path)
        cache.store("good", 42.0)
        # Tear the row behind the cache's back: valid sqlite, wrong blob.
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE solve_cache SET value = ? WHERE key = ?",
                (b"\xde\xad\xbe\xef", "good"),
            )
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            assert cache.lookup("good") is None
            assert cache.memoize("good", lambda: 43.0) == 43.0
        assert telemetry.count("cache_store_errors") >= 1
        # The torn row was dropped and replaced by the recomputation.
        assert cache.lookup("good") == 43.0
        assert not cache.degraded

    def test_unpicklable_blob_reads_as_miss(self, tmp_path):
        path = str(tmp_path / "unpickle.sqlite")
        cache = PersistentSolveCache(path)
        cache.store("key", 1.0)
        import hashlib

        garbage = b"not a pickle"
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE solve_cache SET value = ?, checksum = ?"
                " WHERE key = ?",
                (garbage, hashlib.sha256(garbage).hexdigest(), "key"),
            )
        with use_telemetry(Telemetry()):
            assert cache.lookup("key") is None
        assert not cache.degraded


class TestCorruptedStore:
    def test_garbage_file_degrades_with_one_warning(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a database " * 64)
        with use_telemetry(Telemetry()) as telemetry:
            with pytest.warns(RuntimeWarning, match="degrading"):
                cache = PersistentSolveCache(str(path))
            assert cache.degraded
            assert telemetry.count("cache_store_errors") >= 1
            # Degraded mode still caches, in memory.
            calls = []

            def compute() -> float:
                calls.append(1)
                return 7.0

            with warnings.catch_warnings():
                warnings.simplefilter("error")  # the warning fired once
                assert cache.memoize("k", compute) == 7.0
                assert cache.memoize("k", compute) == 7.0
        assert calls == [1]

    def test_directory_path_degrades(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="degrading"):
            cache = PersistentSolveCache(str(tmp_path))  # a directory
        assert cache.degraded
        assert cache.memoize("k", lambda: 1.0) == 1.0


class TestLifecycle:
    def test_pickles_as_path_and_reconnects(self, tmp_path):
        path = str(tmp_path / "pickled.sqlite")
        cache = PersistentSolveCache(path, max_entries=100)
        cache.store("key", {"band": (1.0, 2.0)})
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.path == path
        assert clone.max_entries == 100
        assert clone.lookup("key") == {"band": (1.0, 2.0)}
        # Counters are per-process/per-instance, not pickled.
        assert clone.hits == 0 and clone.misses == 0

    def test_cross_instance_reuse(self, tmp_path):
        path = str(tmp_path / "shared.sqlite")
        writer = PersistentSolveCache(path)
        key = fingerprint("characterize", "analytic", 1.1, 48)
        writer.memoize(key, lambda: [1.0, 2.0, 3.0])
        writer.close()
        reader = PersistentSolveCache(path)
        calls = []
        value = reader.memoize(key, lambda: calls.append(1))
        assert value == [1.0, 2.0, 3.0]
        assert calls == []  # pure hit, no recompute
        assert reader.hits == 1

    def test_eviction_is_oldest_written_first(self, tmp_path):
        cache = PersistentSolveCache(
            str(tmp_path / "evict.sqlite"), max_entries=3
        )
        with use_telemetry(Telemetry()) as telemetry:
            for i in range(5):
                cache.store(f"k{i}", float(i))
            assert len(cache) == 3
            assert cache.lookup("k0") is None
            assert cache.lookup("k1") is None
            assert cache.lookup("k4") == 4.0
            assert cache.evictions == 2
            assert telemetry.count("cache_evictions") == 2

    def test_unpicklable_values_stay_process_local(self, tmp_path):
        path = str(tmp_path / "local.sqlite")
        cache = PersistentSolveCache(path)
        value = lambda: None  # noqa: E731 - deliberately unpicklable
        cache.store("fn", value)
        assert cache.lookup("fn") is value  # cached for this process
        other = PersistentSolveCache(path)
        assert other.lookup("fn") is None  # never hit the disk

    def test_works_through_module_scoping(self, tmp_path):
        path = str(tmp_path / "scoped.sqlite")
        with use_cache(PersistentSolveCache(path)) as cache:
            assert memoize("key", lambda: 5.0) == 5.0
            assert memoize("key", lambda: 99.0) == 5.0
            assert cache.hits == 1
        # install_cache is the worker-process path: permanent swap,
        # returning the previous cache so tests can restore it.
        fresh = PersistentSolveCache(path)
        previous = install_cache(fresh)
        try:
            assert memoize("key", lambda: 99.0) == 5.0  # disk hit
        finally:
            install_cache(previous)
