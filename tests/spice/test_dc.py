"""Unit tests for DC operating-point analysis."""

import pytest

from repro.spice import (
    Circuit,
    DC,
    NMOS_45LP,
    PMOS_45LP,
    dc_operating_point,
)
from repro.spice.netlist import GROUND


class TestLinearCircuits:
    def test_resistor_divider(self):
        c = Circuit()
        c.add_vsource("v1", "top", GROUND, DC(2.0))
        c.add_resistor("r1", "top", "mid", 1000.0)
        c.add_resistor("r2", "mid", GROUND, 1000.0)
        op = dc_operating_point(c)
        assert op["mid"] == pytest.approx(1.0, rel=1e-5)

    def test_three_way_divider(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(3.0))
        c.add_resistor("r1", "a", "b", 1000.0)
        c.add_resistor("r2", "b", "c", 1000.0)
        c.add_resistor("r3", "c", GROUND, 1000.0)
        op = dc_operating_point(c)
        assert op["b"] == pytest.approx(2.0, rel=1e-5)
        assert op["c"] == pytest.approx(1.0, rel=1e-5)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_isource("i1", GROUND, "x", DC(1e-3))  # pushes into x
        c.add_resistor("r1", "x", GROUND, 1000.0)
        op = dc_operating_point(c)
        assert op["x"] == pytest.approx(1.0, rel=1e-5)

    def test_capacitor_is_open_at_dc(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(1.0))
        c.add_resistor("r1", "a", "b", 1000.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        op = dc_operating_point(c)
        # No DC path from b except gmin; the node floats to the source.
        assert op["b"] == pytest.approx(1.0, rel=1e-3)

    def test_ground_is_zero(self):
        c = Circuit()
        c.add_vsource("v1", "a", GROUND, DC(5.0))
        c.add_resistor("r1", "a", GROUND, 10.0)
        assert dc_operating_point(c)[GROUND] == 0.0


class TestNonlinearCircuits:
    @staticmethod
    def _inverter(vin, vdd=1.1):
        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(vdd))
        c.add_vsource("vin", "in", GROUND, DC(vin))
        c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
        c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
        return dc_operating_point(c)["out"]

    def test_inverter_output_high_for_low_input(self):
        assert self._inverter(0.0) == pytest.approx(1.1, abs=1e-3)

    def test_inverter_output_low_for_high_input(self):
        assert self._inverter(1.1) == pytest.approx(0.0, abs=1e-3)

    def test_inverter_switching_threshold_near_midpoint(self):
        """The balanced sizing puts V_M within ~10% of V_DD/2."""
        lo, hi = 0.3, 0.8
        for _ in range(20):
            mid = (lo + hi) / 2
            if self._inverter(mid) > mid:
                lo = mid
            else:
                hi = mid
        vm = (lo + hi) / 2
        assert abs(vm - 0.55) < 0.11

    def test_diode_connected_nmos(self):
        c = Circuit()
        c.add_isource("i1", GROUND, "d", DC(10e-6))
        c.add_mosfet("m1", "d", "d", GROUND, GROUND, NMOS_45LP, w=1e-6)
        op = dc_operating_point(c)
        # The gate-drain voltage settles near (slightly above) V_th.
        assert 0.3 < op["d"] < 0.7


class TestInitialConditions:
    def test_ic_clamps_node(self):
        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(1.1))
        c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
        c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
        c.add_vsource("vin", "in", GROUND, DC(0.0))
        op = dc_operating_point(c, ics={"out": 0.3})
        # The strong inverter pull-up fights the clamp; the clamp (1e3 S)
        # dominates any transistor conductance.
        assert op["out"] == pytest.approx(0.3, abs=0.05)
