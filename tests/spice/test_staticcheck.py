"""Per-rule tests of the pre-flight static analyzer.

Every rule gets a minimal pathological netlist and the test asserts the
rule id, the severity, and that the diagnostic names the offending
element/node -- the analyzer's whole contract is that failures are
reported in netlist terms, never MNA indices.
"""

import math

import pytest

from repro.analysis.diagnostics import PreflightError, Severity
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.batch import BatchParameters, BatchedSimulation
from repro.spice.mosfet import NMOS_45LP, PMOS_45LP
from repro.spice.netlist import GROUND, Circuit
from repro.spice.stamping import StampPlan
from repro.spice.staticcheck import (
    RULES,
    check_circuit,
    check_die,
    check_tsv,
    preflight_circuit,
    registered_rules,
)
from repro.spice.transient import transient
from repro.telemetry import Telemetry, use_telemetry
from repro.workloads.generator import DiePopulation


def rules_of(report):
    return set(report.rules_fired())


def only(report, rule):
    found = [d for d in report if d.rule == rule]
    assert found, f"rule {rule!r} did not fire; got {rules_of(report)}"
    return found


def inverter(circuit, name, vin, vout, vdd="vdd"):
    circuit.add_mosfet(f"{name}.p", vout, vin, vdd, vdd, PMOS_45LP, w=2e-6)
    circuit.add_mosfet(f"{name}.n", vout, vin, GROUND, GROUND, NMOS_45LP,
                       w=1e-6)


def well_posed_circuit():
    circuit = Circuit("well-posed")
    circuit.add_vsource("vdd", "vdd", GROUND, 1.1)
    circuit.add_vsource("vin", "in", GROUND, 0.0)
    inverter(circuit, "inv", "in", "out")
    circuit.add_capacitor("cl", "out", GROUND, 1e-15)
    return circuit


class TestRegistry:
    def test_required_rules_registered(self):
        required = {
            "floating-node", "vsource-loop", "isource-cutset",
            "undriven-gate", "zero-cap-dynamic-node", "nonphysical-value",
            "structural-singular", "degenerate-element",
            "fault-range", "leakage-below-stop",
        }
        assert required <= set(RULES)

    def test_severities(self):
        assert RULES["floating-node"].severity is Severity.ERROR
        assert RULES["zero-cap-dynamic-node"].severity is Severity.WARNING
        assert RULES["leakage-below-stop"].severity is Severity.INFO

    def test_registered_rules_ordering_is_stable(self):
        assert [s.rule_id for s in registered_rules()] == list(RULES)

    def test_duplicate_rule_id_rejected(self):
        from repro.spice.staticcheck import rule

        with pytest.raises(ValueError, match="duplicate"):
            rule("floating-node", Severity.ERROR, "again")(lambda ctx: iter(()))


class TestWellPosed:
    def test_clean(self):
        report = check_circuit(well_posed_circuit())
        assert report.clean, report.render()

    def test_clean_with_plan(self):
        circuit = well_posed_circuit()
        report = check_circuit(circuit, StampPlan(circuit))
        assert report.clean, report.render()


class TestFloatingNode:
    def test_cap_island_flagged_by_name(self):
        circuit = well_posed_circuit()
        # Two extra nodes joined by a resistor, tied to the rest of the
        # circuit only through a capacitor: no DC path to ground.
        circuit.add_resistor("r_island", "isl_a", "isl_b", 1e3)
        circuit.add_capacitor("c_link", "isl_a", "out", 1e-15)
        report = check_circuit(circuit)
        [d] = only(report, "floating-node")
        assert d.severity is Severity.ERROR
        assert {"isl_a", "isl_b"} <= set(d.nodes)

    def test_message_names_no_matrix_indices(self):
        circuit = Circuit("floater")
        circuit.add_vsource("vdd", "vdd", GROUND, 1.0)
        circuit.add_resistor("rl", "vdd", "mid", 1e3)
        circuit.add_capacitor("cf", "lonely", GROUND, 1e-15)
        circuit.add_resistor("rg", "mid", GROUND, 1e3)
        [d] = only(check_circuit(circuit), "floating-node")
        assert d.nodes == ("lonely",)
        assert "lonely" in d.message

    def test_ic_pinned_island_is_clean(self):
        # Charge-sharing: two caps joined by a resistor, voltages set
        # only by initial conditions.  Ill-posed without the ICs,
        # well-posed with them (one IC pins the whole island).
        circuit = Circuit("share")
        circuit.add_capacitor("c1", "a", GROUND, 1e-12)
        circuit.add_capacitor("c2", "b", GROUND, 1e-12)
        circuit.add_resistor("rshare", "a", "b", 1e3)
        assert check_circuit(circuit).has_errors
        assert check_circuit(circuit, ics=["a"]).clean

    def test_ic_on_unknown_node_is_ignored(self):
        circuit = well_posed_circuit()
        assert check_circuit(circuit, ics=["no_such_node"]).clean


class TestVsourceLoop:
    def test_parallel_sources_flagged(self):
        circuit = well_posed_circuit()
        circuit.add_vsource("vdd2", "vdd", GROUND, 1.0)
        report = check_circuit(circuit)
        [d] = only(report, "vsource-loop")
        assert d.severity is Severity.ERROR
        assert d.element == "vdd2"
        assert set(d.nodes) == {"vdd", GROUND}

    def test_three_source_cycle(self):
        circuit = Circuit("loop3")
        circuit.add_vsource("v1", "a", GROUND, 1.0)
        circuit.add_vsource("v2", "b", "a", 0.5)
        circuit.add_vsource("v3", "b", GROUND, 1.5)
        circuit.add_resistor("r", "b", GROUND, 1e3)
        [d] = only(check_circuit(circuit), "vsource-loop")
        assert d.element == "v3"


class TestIsourceCutset:
    def test_cap_only_node_flagged(self):
        circuit = well_posed_circuit()
        circuit.add_isource("ileak", "island", GROUND, 1e-6)
        circuit.add_capacitor("cisl", "island", GROUND, 1e-15)
        report = check_circuit(circuit)
        [d] = only(report, "isource-cutset")
        assert d.severity is Severity.ERROR
        assert d.element == "ileak"
        assert d.nodes == ("island",)

    def test_resistive_return_is_fine(self):
        circuit = well_posed_circuit()
        circuit.add_isource("ibias", "out", GROUND, 1e-6)
        assert "isource-cutset" not in rules_of(check_circuit(circuit))


class TestUndrivenGate:
    def test_gate_only_node_flagged(self):
        circuit = well_posed_circuit()
        inverter(circuit, "orphan", "nowhere", "orphan_out")
        circuit.add_capacitor("c2", "orphan_out", GROUND, 1e-15)
        report = check_circuit(circuit)
        [d] = only(report, "undriven-gate")
        assert d.severity is Severity.ERROR
        assert d.nodes == ("nowhere",)
        assert "orphan" in (d.element or "")
        # The same net must not be double-reported as floating.
        assert "floating-node" not in rules_of(report)


class TestZeroCapDynamicNode:
    def test_bare_fet_output_warned(self):
        circuit = Circuit("bare")
        circuit.add_vsource("vdd", "vdd", GROUND, 1.1)
        circuit.add_vsource("vin", "in", GROUND, 0.0)
        circuit.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP,
                           w=1e-6, parasitics=False)
        circuit.add_resistor("rl", "out", "vdd", 1e4)
        report = check_circuit(circuit)
        [d] = only(report, "zero-cap-dynamic-node")
        assert d.severity is Severity.WARNING
        assert d.nodes == ("out",)
        assert d.element == "mn"

    def test_parasitics_silence_the_warning(self):
        circuit = Circuit("loaded")
        circuit.add_vsource("vdd", "vdd", GROUND, 1.1)
        circuit.add_vsource("vin", "in", GROUND, 0.0)
        circuit.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP,
                           w=1e-6)
        circuit.add_resistor("rl", "out", "vdd", 1e4)
        assert "zero-cap-dynamic-node" not in rules_of(check_circuit(circuit))


class TestNonphysicalValue:
    def test_nan_resistance_flagged(self):
        circuit = well_posed_circuit()
        circuit.add_resistor("rbad", "out", GROUND, float("nan"))
        [d] = only(check_circuit(circuit), "nonphysical-value")
        assert d.severity is Severity.ERROR
        assert d.element == "rbad"

    def test_negative_resistance_flagged(self):
        circuit = well_posed_circuit()
        r = circuit.add_resistor("rneg", "out", GROUND, 1e3)
        r.resistance = -5.0  # past the constructor guard, like a bad sweep
        [d] = only(check_circuit(circuit), "nonphysical-value")
        assert d.element == "rneg"
        assert "-5.0" in d.message

    def test_nonfinite_source_flagged(self):
        circuit = well_posed_circuit()
        circuit.add_vsource("vinf", "x", GROUND, float("inf"))
        circuit.add_resistor("rx", "x", GROUND, 1e3)
        [d] = only(check_circuit(circuit), "nonphysical-value")
        assert d.element == "vinf"


class TestDegenerateElement:
    def test_same_node_resistor_warned(self):
        circuit = well_posed_circuit()
        circuit.add_resistor("rloop", "out", "out", 1e3)
        [d] = only(check_circuit(circuit), "degenerate-element")
        assert d.severity is Severity.WARNING
        assert d.element == "rloop"

    def test_mosfet_parasitic_ground_caps_exempt(self):
        # An NMOS with its source on ground gets a ground-to-ground csb
        # parasitic by construction; that must not warn.
        circuit = well_posed_circuit()
        assert "degenerate-element" not in rules_of(check_circuit(circuit))


class TestStructuralSingular:
    def test_unstamped_node_reported(self):
        circuit = Circuit("dangling")
        circuit.add_vsource("vdd", "vdd", GROUND, 1.0)
        circuit.add_resistor("r1", "vdd", GROUND, 1e3)
        circuit.node_index("ghost")  # registered but never stamped
        report = check_circuit(circuit)
        [d] = only(report, "structural-singular")
        assert d.severity is Severity.ERROR
        assert d.nodes == ("ghost",)
        assert "structurally zero" in d.message

    def test_vsource_loop_is_also_structurally_singular(self):
        circuit = Circuit("loop")
        circuit.add_vsource("v1", "a", GROUND, 1.0)
        circuit.add_vsource("v2", "a", GROUND, 1.0)
        circuit.add_resistor("r", "a", GROUND, 1e3)
        report = check_circuit(circuit)
        assert "structural-singular" in rules_of(report)
        assert "vsource-loop" in rules_of(report)

    def test_plan_and_circuit_paths_agree(self):
        circuit = Circuit("agree")
        circuit.add_vsource("v1", "a", GROUND, 1.0)
        circuit.add_vsource("v2", "a", GROUND, 1.0)
        circuit.add_resistor("r", "a", GROUND, 1e3)
        without_plan = check_circuit(circuit, rules=["structural-singular"])
        with_plan = check_circuit(circuit, StampPlan(circuit),
                                  rules=["structural-singular"])
        assert rules_of(without_plan) == rules_of(with_plan)
        assert len(without_plan) == len(with_plan)


class TestFailFastGates:
    def test_transient_rejects_before_any_newton_iteration(self):
        """The contract: bad netlists never reach the Newton loop."""
        circuit = well_posed_circuit()
        circuit.add_vsource("vdd_dup", "vdd", GROUND, 1.2)
        tele = Telemetry()
        with use_telemetry(tele):
            with pytest.raises(PreflightError) as excinfo:
                transient(circuit, 1e-9, 1e-12)
        counters = tele.snapshot()["counters"]
        assert counters.get("newton_solves", 0) == 0
        assert counters.get("newton_iterations", 0) == 0
        assert "vdd_dup" in str(excinfo.value)

    def test_batched_rejects_before_any_newton_iteration(self):
        circuit = well_posed_circuit()
        circuit.add_capacitor("cfloat", "adrift", GROUND, 1e-15)
        tele = Telemetry()
        with use_telemetry(tele):
            with pytest.raises(PreflightError) as excinfo:
                BatchedSimulation(circuit, BatchParameters.nominal(4))
        counters = tele.snapshot()["counters"]
        assert counters.get("newton_solves", 0) == 0
        assert "adrift" in str(excinfo.value)

    def test_transient_preflight_opt_out(self):
        circuit = well_posed_circuit()
        result = transient(circuit, 20e-12, 5e-12, preflight=False)
        assert "out" in result.voltages

    def test_preflight_circuit_report_only_counts_suppressed(self):
        circuit = well_posed_circuit()
        circuit.add_vsource("vdd_dup", "vdd", GROUND, 1.2)
        tele = Telemetry()
        with use_telemetry(tele):
            report = preflight_circuit(circuit, fail=False)
        assert report.has_errors
        counters = tele.snapshot()["counters"]
        assert counters["diag_emitted.vsource-loop"] == 1
        assert counters["diag_suppressed.vsource-loop"] == 1

    def test_preflight_records_telemetry_on_raise(self):
        circuit = well_posed_circuit()
        circuit.add_vsource("vdd_dup", "vdd", GROUND, 1.2)
        tele = Telemetry()
        with use_telemetry(tele):
            with pytest.raises(PreflightError):
                preflight_circuit(circuit)
        counters = tele.snapshot()["counters"]
        assert counters["diag_emitted.vsource-loop"] == 1
        assert "diag_suppressed.vsource-loop" not in counters


class TestTsvChecks:
    def test_fault_range_x_out_of_bounds(self):
        fault = ResistiveOpen(r_open=1e3, x=0.5)
        # The constructor guards x; corrupt it the way a buggy sweep or
        # deserializer would, past the guard.
        object.__setattr__(fault, "x", 1.5)
        tsv = Tsv(fault=fault)
        diags = check_tsv(tsv, name="t0")
        assert any(
            d.rule == "fault-range" and d.severity is Severity.ERROR
            and d.element == "t0" and "1.5" in d.message
            for d in diags
        )

    def test_leakage_below_stop_is_info_not_error(self):
        tsv = Tsv(fault=Leakage(r_leak=100.0))
        diags = check_tsv(tsv, name="t0", stop_floor=1500.0)
        [d] = [d for d in diags if d.rule == "leakage-below-stop"]
        assert d.severity is Severity.INFO

    def test_healthy_tsv_clean(self):
        assert check_tsv(Tsv(), stop_floor=1500.0) == []

    def test_check_die_labels_records(self):
        population = DiePopulation(num_tsvs=8, seed=3)
        report = check_die(population, label="die[0]")
        assert not report.has_errors
        # Labels carry die and TSV index for any finding that does fire.
        assert report.subject == "die[0]"


def test_fault_range_nan_r_leak():
    tsv = Tsv(fault=Leakage(r_leak=float("nan")))
    diags = check_tsv(tsv)
    assert any(d.rule == "fault-range" for d in diags)


def test_infinite_r_open_allowed():
    tsv = Tsv(fault=ResistiveOpen(r_open=math.inf, x=0.2))
    assert check_tsv(tsv) == []
