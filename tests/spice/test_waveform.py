"""Unit tests for waveform post-processing."""

import numpy as np
import pytest

from repro.spice.waveform import NoOscillationError, Waveform


def make_square(period=1e-9, cycles=10, samples_per_cycle=100, high=1.0):
    t = np.linspace(0, period * cycles, cycles * samples_per_cycle,
                    endpoint=False)
    v = (np.sin(2 * np.pi * t / period) > 0).astype(float) * high
    return Waveform(t, v, name="sq")


def make_sine(period=1e-9, cycles=10, samples_per_cycle=200):
    t = np.linspace(0, period * cycles, cycles * samples_per_cycle)
    return Waveform(t, np.sin(2 * np.pi * t / period), name="sin")


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(5.0), np.arange(4.0))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_len(self):
        assert len(Waveform(np.arange(7.0), np.zeros(7))) == 7


class TestCrossings:
    def test_linear_interpolation_of_crossing(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert w.crossings(0.25, "rise")[0] == pytest.approx(0.25)

    def test_rise_and_fall_counts_on_sine(self):
        w = make_sine(cycles=5)
        assert len(w.crossings(0.0, "rise")) >= 4
        assert len(w.crossings(0.0, "fall")) >= 4

    def test_both_direction(self):
        w = make_sine(cycles=3)
        both = w.crossings(0.0, "both")
        rise = w.crossings(0.0, "rise")
        fall = w.crossings(0.0, "fall")
        assert len(both) == len(rise) + len(fall)

    def test_no_crossings_returns_empty(self):
        w = Waveform(np.arange(10.0), np.zeros(10))
        assert len(w.crossings(0.5, "rise")) == 0

    def test_unknown_direction_rejected(self):
        w = make_sine()
        with pytest.raises(ValueError):
            w.crossings(0.0, "sideways")


class TestPeriod:
    def test_period_of_sine(self):
        w = make_sine(period=2e-9, cycles=10)
        assert w.period(0.0) == pytest.approx(2e-9, rel=1e-3)

    def test_period_skips_startup_cycles(self):
        w = make_sine(period=1e-9, cycles=10)
        assert w.period(0.0, skip_cycles=4) == pytest.approx(1e-9, rel=1e-3)

    def test_flat_waveform_raises(self):
        w = Waveform(np.arange(100.0), np.zeros(100))
        with pytest.raises(NoOscillationError):
            w.period(0.5)

    def test_too_few_cycles_raises(self):
        w = make_sine(cycles=3)
        with pytest.raises(NoOscillationError):
            w.period(0.0, skip_cycles=2, min_cycles=5)

    def test_oscillates_predicate(self):
        assert make_sine(cycles=10).oscillates(0.0)
        assert not Waveform(np.arange(10.0), np.zeros(10)).oscillates(0.5)


class TestPropagationDelay:
    def test_shifted_copy_delay(self):
        t = np.linspace(0, 10e-9, 2000)
        v1 = np.clip((t - 1e-9) / 1e-10, 0, 1)
        v2 = np.clip((t - 1.5e-9) / 1e-10, 0, 1)
        w1, w2 = Waveform(t, v1, name="a"), Waveform(t, v2, name="b")
        delay = w1.propagation_delay_to(w2, 0.5)
        assert delay == pytest.approx(0.5e-9, rel=1e-3)

    def test_missing_output_edge_raises(self):
        t = np.linspace(0, 1e-9, 100)
        w1 = Waveform(t, np.linspace(0, 1, 100), name="in")
        w2 = Waveform(t, np.zeros(100), name="out")
        with pytest.raises(NoOscillationError):
            w1.propagation_delay_to(w2, 0.5)

    def test_missing_input_edge_raises(self):
        t = np.linspace(0, 1e-9, 100)
        w1 = Waveform(t, np.zeros(100), name="in")
        w2 = Waveform(t, np.linspace(0, 1, 100), name="out")
        with pytest.raises(NoOscillationError):
            w1.propagation_delay_to(w2, 0.5)


class TestSliceAndValues:
    def test_value_at_interpolates(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert w.value_at(0.5) == pytest.approx(1.0)

    def test_final_value(self):
        w = Waveform(np.arange(4.0), np.array([0.0, 1.0, 2.0, 3.0]))
        assert w.final_value() == 3.0

    def test_slice_bounds(self):
        w = make_sine(cycles=10)
        sliced = w.slice(2e-9, 5e-9)
        assert sliced.time[0] >= 2e-9
        assert sliced.time[-1] <= 5e-9

    def test_slice_too_narrow_raises(self):
        w = make_sine(cycles=10)
        with pytest.raises(ValueError):
            w.slice(1e-9, 1e-9 + 1e-15)
