"""Unit tests for the scan-reconfigurable signature register."""

import pytest

from repro.dft.scan import ScanRegister


class TestParallelLoad:
    def test_load_and_read(self):
        reg = ScanRegister(8)
        reg.load(0xA5)
        assert reg.read_parallel() == 0xA5

    def test_reset_state_zero(self):
        assert ScanRegister(6).read_parallel() == 0

    def test_reload_overwrites(self):
        reg = ScanRegister(4)
        reg.load(0xF)
        reg.load(0x3)
        assert reg.read_parallel() == 0x3

    def test_value_must_fit(self):
        with pytest.raises(ValueError):
            ScanRegister(4).load(16)

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            ScanRegister(0)


class TestShiftOut:
    @pytest.mark.parametrize("value", [0x00, 0x01, 0x80, 0xA5, 0xFF, 0x3C])
    def test_signature_roundtrip(self, value):
        """load -> shift out -> reassemble must reproduce the count,
        exactly the tester-side flow of Sec. IV-C."""
        reg = ScanRegister(8)
        reg.load(value)
        bits = reg.shift_out()
        assert ScanRegister.bits_to_int(bits) == value

    def test_shift_fills_with_zeros_by_default(self):
        reg = ScanRegister(4)
        reg.load(0xF)
        reg.shift_out()
        assert reg.read_parallel() == 0

    def test_scan_in_bits_become_new_state(self):
        reg = ScanRegister(4)
        reg.load(0x0)
        reg.shift_out(scan_in_bits=[1, 1, 1, 1])
        assert reg.read_parallel() == 0xF

    def test_shift_order_is_msb_first(self):
        reg = ScanRegister(4)
        reg.load(0b1000)  # only the top flop set
        bits = reg.shift_out()
        assert bits[0] == 1
        assert bits[1:] == [0, 0, 0]

    def test_back_to_back_measurements(self):
        """Two signatures through the same register do not interfere."""
        reg = ScanRegister(6)
        reg.load(0x2A)
        first = ScanRegister.bits_to_int(reg.shift_out())
        reg.load(0x15)
        second = ScanRegister.bits_to_int(reg.shift_out())
        assert (first, second) == (0x2A, 0x15)
