"""Unit tests for the full DfT architecture plan (Fig. 5)."""

import pytest

from repro.dft.architecture import DftArchitecture, GroupPlan
from repro.dft.control import MeasurementPlan


class TestGrouping:
    def test_partition_covers_all_tsvs(self):
        arch = DftArchitecture(num_tsvs=23, group_size=5)
        groups = arch.groups()
        all_ids = [tsv for g in groups for tsv in g.tsv_ids]
        assert all_ids == list(range(23))
        assert groups[-1].size == 3

    def test_group_measurements(self):
        group = GroupPlan(0, tuple(range(5)))
        assert group.measurements(per_tsv=True) == 6   # T2 + 5x T1
        assert group.measurements(per_tsv=False) == 2  # T2 + group T1

    def test_decoder_bits(self):
        arch = DftArchitecture(num_tsvs=1000, group_size=5)  # 200 groups
        assert arch.decoder_select_bits == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DftArchitecture(num_tsvs=0)


class TestAreaAndTime:
    def test_paper_area_flows_through(self):
        arch = DftArchitecture(num_tsvs=1000, group_size=5)
        assert arch.area_model().oscillator_area_um2 == pytest.approx(7782.0)
        assert arch.area_fraction(25.0) < 0.001

    def test_test_time_linear_in_voltages(self):
        arch = DftArchitecture(num_tsvs=100, group_size=5,
                               voltages=(1.1, 0.75))
        t2 = arch.test_time()
        t4 = arch.test_time(num_voltages=4)
        assert t4 == pytest.approx(2 * t2)

    def test_group_screen_cheaper_than_isolation(self):
        arch = DftArchitecture(num_tsvs=1000, group_size=5)
        assert arch.test_time(per_tsv=False) < arch.test_time(per_tsv=True)

    def test_whole_die_test_time_subsecond_scale(self):
        """With 5 us windows and 4 voltages, a 1000-TSV die tests in
        well under a second -- the paper's low-test-cost claim."""
        arch = DftArchitecture(num_tsvs=1000, group_size=5,
                               plan=MeasurementPlan(window=5e-6))
        assert arch.test_time(per_tsv=True) < 1.0

    def test_summary_keys(self):
        summary = DftArchitecture(num_tsvs=50).summary()
        for key in ("num_groups", "total_area_um2", "area_fraction",
                    "test_time_s_per_tsv_isolation"):
            assert key in summary
