"""Unit tests for the LFSR measurement path."""

import pytest

from repro.dft.lfsr import (
    Lfsr,
    LfsrMeasurement,
    MAXIMAL_TAPS,
    build_count_lookup,
)


class TestLfsrSequences:
    @pytest.mark.parametrize("bits", [2, 3, 4, 5, 6, 7, 8, 10, 12])
    def test_maximal_length(self, bits):
        """Every supported width must cycle through 2^n - 1 states."""
        lfsr = Lfsr(bits, state=1)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.step())
        assert len(seen) == lfsr.period
        assert 0 not in seen

    def test_state_returns_after_full_period(self):
        lfsr = Lfsr(8, state=0x5A)
        lfsr.advance(lfsr.period)
        assert lfsr.state == 0x5A

    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(8, state=0)

    def test_oversized_state_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(4, state=16)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(25)

    def test_sequence_length(self):
        assert len(Lfsr(6).sequence(10)) == 10


class TestLookupTable:
    def test_size_covers_all_states(self):
        table = build_count_lookup(8)
        assert len(table) == 255

    def test_roundtrip_decoding(self):
        table = build_count_lookup(10)
        lfsr = Lfsr(10, state=1)
        for k in range(1, 200):
            state = lfsr.step()
            assert table[state] == k


class TestLfsrMeasurement:
    def test_matches_binary_counter_estimate(self):
        from repro.dft.counter import CounterMeasurement
        lm = LfsrMeasurement(bits=12, window=5e-6)
        cm = CounterMeasurement(bits=12, window=5e-6)
        for period in (5e-9, 7.7e-9, 11.3e-9):
            assert lm.measure(period, phase=1e-9) == pytest.approx(
                cm.measure(period, phase=1e-9)
            )

    def test_signature_decodes_to_edge_count(self):
        lm = LfsrMeasurement(bits=10, window=1e-6)
        sig = lm.signature(period=10e-9, phase=0.0)
        assert lm.decode(sig) == 100 + 1  # edges at 0, 10ns, ... 1us

    def test_unreachable_signature_rejected(self):
        lm = LfsrMeasurement(bits=10)
        with pytest.raises(ValueError):
            lm.decode(0)

    def test_stuck_oscillator_has_seed_signature(self):
        lm = LfsrMeasurement(bits=10, window=1e-6)
        assert lm.signature(period=10e-6, phase=2e-6) == lm.seed
        with pytest.raises(ValueError):
            lm.measure(period=10e-6, phase=2e-6)
