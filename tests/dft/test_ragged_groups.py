"""Ragged-final-group invariants across the architecture stack.

When the TSV count is not divisible by N, the final ring-oscillator
group holds the remainder -- never padded, never dropped.  These tests
pin the agreement between the three places that partition or price the
die: :class:`~repro.dft.architecture.DftArchitecture`,
:class:`~repro.core.area.DftAreaModel`, and
:meth:`~repro.workloads.generator.DiePopulation.groups` -- and that the
closed-form measurement count charges the ragged group for its actual
members only.
"""

import math

import pytest

from repro.core.area import DftAreaModel
from repro.dft.architecture import DftArchitecture
from repro.workloads.generator import DiePopulation

# (num_tsvs, group_size): divisible, ragged remainders 1 and N-1, a
# group bigger than the die, and N = 1.
CASES = [
    (20, 5),
    (21, 5),
    (24, 5),
    (7, 3),
    (3, 8),
    (6, 1),
    (1000, 7),
]


@pytest.mark.parametrize("num_tsvs,group_size", CASES)
class TestRaggedPartition:
    def test_num_groups_agree_everywhere(self, num_tsvs, group_size):
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        area = DftAreaModel(num_tsvs=num_tsvs, group_size=group_size)
        population = DiePopulation(num_tsvs=num_tsvs, seed=0)
        expected = math.ceil(num_tsvs / group_size)
        assert arch.num_groups == expected
        assert area.num_groups == expected
        assert len(population.groups(group_size)) == expected

    def test_partitions_are_identical(self, num_tsvs, group_size):
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        population = DiePopulation(num_tsvs=num_tsvs, seed=0)
        arch_ids = [list(g.tsv_ids) for g in arch.groups()]
        pop_ids = [
            [r.index for r in g] for g in population.groups(group_size)
        ]
        assert arch_ids == pop_ids

    def test_final_group_is_ragged_not_padded(self, num_tsvs, group_size):
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        groups = arch.groups()
        remainder = num_tsvs % group_size
        expected_last = remainder if remainder else min(group_size,
                                                        num_tsvs)
        assert groups[-1].size == expected_last
        assert arch.ragged_group_size == expected_last
        assert all(g.size == group_size for g in groups[:-1])
        # Every TSV appears exactly once.
        flat = [i for g in groups for i in g.tsv_ids]
        assert flat == list(range(num_tsvs))

    def test_closed_form_matches_the_groups_sum(self, num_tsvs,
                                                group_size):
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        for per_tsv in (True, False):
            assert arch.total_measurements(per_tsv) == sum(
                g.measurements(per_tsv) for g in arch.groups()
            )

    def test_ragged_group_charged_for_actual_members(self, num_tsvs,
                                                     group_size):
        """Per-TSV isolation pays num_tsvs + num_groups, not a padded
        num_groups * (group_size + 1)."""
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        assert arch.total_measurements(per_tsv=True) == (
            num_tsvs + arch.num_groups
        )
        padded = arch.num_groups * (group_size + 1)
        if num_tsvs % group_size:
            assert arch.total_measurements(per_tsv=True) < padded

    def test_test_time_scales_with_actual_measurements(self, num_tsvs,
                                                       group_size):
        arch = DftArchitecture(num_tsvs=num_tsvs, group_size=group_size)
        per_voltage = (
            arch.total_measurements(True) * arch.plan.measurement_time()
        )
        assert arch.test_time(per_tsv=True) == pytest.approx(
            len(arch.voltages) * per_voltage
        )
