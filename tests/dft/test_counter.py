"""Unit tests for the counter measurement model (paper Sec. IV-C)."""

import math

import numpy as np
import pytest

from repro.dft.counter import (
    BinaryCounter,
    CounterMeasurement,
    count_bounds,
    measurement_error_bound,
    required_counter_bits,
    required_window,
)


class TestBounds:
    def test_paper_inequality(self):
        """t/T - 1 <= c <= t/T + 1 for arbitrary phases."""
        period, window = 7.3e-9, 1e-6
        lo, hi = count_bounds(period, window)
        cm = CounterMeasurement(bits=20, window=window)
        for phase in np.linspace(0.0, period, 29):
            count = cm.count_edges(period, phase)
            assert lo <= count <= hi

    def test_bounds_tight(self):
        """Both bound extremes are achieved at some phase."""
        period, window = 7.3e-9, 1e-6
        lo, hi = count_bounds(period, window)
        cm = CounterMeasurement(bits=20, window=window)
        counts = {cm.count_edges(period, phase)
                  for phase in np.linspace(0.0, period, 997)}
        assert lo in counts or lo + 1 in counts
        assert hi in counts or hi - 1 in counts

    def test_validation(self):
        with pytest.raises(ValueError):
            count_bounds(-1.0, 1.0)
        with pytest.raises(ValueError):
            count_bounds(1.0, 0.0)


class TestErrorBounds:
    def test_paper_worked_example(self):
        """T = 5 ns, E = 0.005 ns -> t = 5 us, count 1000, 10 bits."""
        window = required_window(5e-9, 0.005e-9)
        assert window == pytest.approx(5e-6)
        assert required_counter_bits(5e-9, window) == 10

    def test_error_formulae(self):
        e_minus, e_plus = measurement_error_bound(5e-9, 5e-6)
        assert e_plus == pytest.approx(25e-18 / (5e-6 - 5e-9))
        assert e_minus == pytest.approx(25e-18 / (5e-6 + 5e-9))
        assert e_plus > e_minus

    def test_estimates_within_error_bound(self):
        period, window = 3.7e-9, 2e-6
        cm = CounterMeasurement(bits=16, window=window)
        _, e_plus = measurement_error_bound(period, window)
        for phase in np.linspace(0.0, period, 41):
            estimate = cm.measure(period, phase)
            assert abs(estimate - period) <= e_plus * 1.001

    def test_longer_window_smaller_error(self):
        _, e_short = measurement_error_bound(5e-9, 1e-6)
        _, e_long = measurement_error_bound(5e-9, 10e-6)
        assert e_long < e_short

    def test_window_must_exceed_period(self):
        with pytest.raises(ValueError):
            measurement_error_bound(1e-6, 1e-9)


class TestCounterMeasurement:
    def test_zero_count_for_stuck_oscillator(self):
        cm = CounterMeasurement(bits=10, window=1e-6)
        # A "period" longer than the window with a late phase -> no edges.
        assert cm.count_edges(period=10e-6, phase=2e-6) == 0

    def test_estimate_requires_positive_count(self):
        cm = CounterMeasurement()
        with pytest.raises(ValueError):
            cm.estimate_period(0)

    def test_saturation_at_max_count(self):
        cm = CounterMeasurement(bits=4, window=1e-6)
        assert cm.count_edges(period=1e-9) == cm.max_count
        assert cm.overflowed(period=1e-9)

    def test_no_overflow_when_sized_right(self):
        cm = CounterMeasurement(bits=12, window=1e-6)
        assert not cm.overflowed(period=1e-9)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CounterMeasurement().count_edges(-1e-9)


class TestGateLevelCrossCheck:
    @pytest.mark.parametrize("period,phase", [
        (7.3e-9, 0.0), (7.3e-9, 3.1e-9), (11.0e-9, 5.0e-9),
    ])
    def test_ripple_counter_matches_behavioural(self, period, phase):
        window = 300e-9
        behavioural = CounterMeasurement(bits=8, window=window)
        gate_level = BinaryCounter(8)
        gate_level.apply_clock_edges(period, phase, window)
        assert gate_level.read() == behavioural.count_edges(period, phase)

    def test_shift_out_matches_read(self):
        counter = BinaryCounter(6)
        counter.apply_clock_edges(10e-9, 1e-9, 250e-9)
        bits = counter.shift_out()
        assert sum(b << i for i, b in enumerate(bits)) == counter.read()

    def test_reset_state_is_zero(self):
        assert BinaryCounter(8).read() == 0

    def test_counter_wraps_modulo_2n(self):
        counter = BinaryCounter(3)  # wraps at 8
        counter.apply_clock_edges(5e-9, 0.0, 50e-9)  # ~11 edges
        cm = CounterMeasurement(bits=16, window=50e-9)
        exact = cm.count_edges(5e-9, 0.0)
        assert counter.read() == exact % 8

    def test_bit_width_validated(self):
        with pytest.raises(ValueError):
            BinaryCounter(0)
