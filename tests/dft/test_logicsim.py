"""Unit tests for the event-driven logic simulator."""

import pytest

from repro.dft.logicsim import LogicSimulator, X


def settle(sim, stop=1e-6):
    sim.run_until(stop)
    return sim


class TestCombinational:
    @pytest.mark.parametrize("kind,inputs,expected", [
        ("not", [0], 1), ("not", [1], 0),
        ("and", [1, 1], 1), ("and", [1, 0], 0),
        ("or", [0, 0], 0), ("or", [0, 1], 1),
        ("nand", [1, 1], 0), ("nand", [0, 1], 1),
        ("nor", [0, 0], 1), ("nor", [1, 0], 0),
        ("xor", [1, 0], 1), ("xor", [1, 1], 0),
        ("buf", [1], 1),
    ])
    def test_truth_tables(self, kind, inputs, expected):
        sim = LogicSimulator()
        wires = [f"i{k}" for k in range(len(inputs))]
        sim.add_gate(kind, wires, "y")
        for wire, value in zip(wires, inputs):
            sim.set_input(wire, value)
        assert settle(sim).value("y") == expected

    def test_mux_selects(self):
        for sel, expected in ((0, 1), (1, 0)):
            sim = LogicSimulator()
            sim.add_gate("mux", ["a", "b", "s"], "y")
            sim.set_input("a", 1)
            sim.set_input("b", 0)
            sim.set_input("s", sel)
            assert settle(sim).value("y") == expected

    def test_unknown_inputs_propagate_x(self):
        sim = LogicSimulator()
        sim.add_gate("and", ["a", "b"], "y")
        sim.set_input("a", 1)  # b stays X
        assert settle(sim).value("y") == X

    def test_controlling_value_beats_x(self):
        sim = LogicSimulator()
        sim.add_gate("and", ["a", "b"], "y")
        sim.set_input("a", 0)
        assert settle(sim).value("y") == 0

    def test_unknown_gate_kind_rejected(self):
        with pytest.raises(ValueError):
            LogicSimulator().add_gate("xnorandor", ["a"], "y")

    def test_gate_delay_orders_events(self):
        sim = LogicSimulator()
        sim.add_gate("not", ["a"], "y", delay=10e-9)
        sim.set_input("a", 0, time=0.0)
        sim.run_until(5e-9)
        assert sim.value("y") == X  # not propagated yet
        sim.run_until(20e-9)
        assert sim.value("y") == 1

    def test_chained_gates(self):
        sim = LogicSimulator()
        sim.add_gate("not", ["a"], "b", delay=1e-9)
        sim.add_gate("not", ["b"], "c", delay=1e-9)
        sim.set_input("a", 0)
        assert settle(sim).value("c") == 0


class TestDff:
    def test_samples_on_rising_edge(self):
        sim = LogicSimulator()
        sim.add_dff("d", "clk", "q", delay=1e-10)
        sim.set_input("d", 1, 0.0)
        sim.set_input("clk", 0, 0.0)
        sim.set_input("clk", 1, 10e-9)
        settle(sim)
        assert sim.value("q") == 1

    def test_no_sample_on_falling_edge(self):
        sim = LogicSimulator()
        sim.add_dff("d", "clk", "q", delay=1e-10)
        sim.set_input("clk", 1, 0.0)
        sim.set_input("d", 1, 1e-9)
        sim.set_input("clk", 0, 10e-9)
        settle(sim)
        assert sim.value("q") == X  # never saw a rising edge after d=1

    def test_async_reset(self):
        sim = LogicSimulator()
        sim.add_dff("d", "clk", "q", reset="rst", delay=1e-10)
        sim.set_input("d", 1, 0.0)
        sim.set_input("clk", 0, 0.0)
        sim.set_input("clk", 1, 5e-9)
        sim.set_input("rst", 1, 10e-9)
        settle(sim)
        assert sim.value("q") == 0

    def test_reset_blocks_clocking(self):
        sim = LogicSimulator()
        sim.add_dff("d", "clk", "q", reset="rst", delay=1e-10)
        sim.set_input("rst", 1, 0.0)
        sim.set_input("d", 1, 0.0)
        sim.set_input("clk", 0, 1e-9)
        sim.set_input("clk", 1, 2e-9)
        settle(sim)
        assert sim.value("q") == 0

    def test_toggle_flop_divides_by_two(self):
        sim = LogicSimulator()
        sim.add_dff("qb", "clk", "q", reset="rst", delay=1e-10)
        sim.add_gate("not", ["q"], "qb", delay=2e-11)
        sim.set_input("rst", 1, 0.0)
        sim.set_input("rst", 0, 1e-9)
        sim.set_input("clk", 0, 0.0)
        edges = sim.schedule_clock("clk", period=10e-9, start=5e-9,
                                   stop=95e-9)
        settle(sim, 200e-9)
        assert edges == 10
        # 10 rising edges toggle q to ... 10 toggles -> back to 0.
        assert sim.value("q") == 0


class TestHarness:
    def test_schedule_clock_edge_count(self):
        sim = LogicSimulator()
        edges = sim.schedule_clock("clk", period=1e-9, start=0.0, stop=9.5e-9)
        assert edges == 10

    def test_cannot_schedule_in_the_past(self):
        sim = LogicSimulator()
        sim.run_until(1e-6)
        with pytest.raises(ValueError):
            sim.set_input("a", 1, time=0.0)

    def test_bad_logic_value_rejected(self):
        with pytest.raises(ValueError):
            LogicSimulator().set_input("a", 7)

    def test_gate_count(self):
        sim = LogicSimulator()
        sim.add_gate("not", ["a"], "b")
        sim.add_gate("nand", ["a", "b"], "c")
        sim.add_dff("c", "clk", "q")
        counts = sim.gate_count()
        assert counts == {"not": 1, "nand": 1, "dff": 1}
