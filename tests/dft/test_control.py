"""Unit tests for the test controller and measurement plans."""

import math

import pytest

from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.dft.control import MeasurementPlan, SignalSchedule, recommended_plan
from repro.dft.control import TestController as Controller


@pytest.fixture(scope="module")
def engine():
    return AnalyticEngine(RingOscillatorConfig(vdd=1.1))


@pytest.fixture()
def controller(engine):
    return Controller(engine, MeasurementPlan(window=20e-6,
                                                  counter_bits=16))


class TestMeasurementPlan:
    def test_times_compose(self):
        plan = MeasurementPlan(window=5e-6, shift_clock_hz=50e6,
                               config_cycles=8, counter_bits=10)
        assert plan.shift_time == pytest.approx(10 / 50e6)
        assert plan.config_time == pytest.approx(8 / 50e6)
        assert plan.measurement_time() == pytest.approx(
            5e-6 + 10 / 50e6 + 8 / 50e6
        )

    def test_recommended_plan_paper_example(self):
        plan = recommended_plan(5e-9, 0.005e-9)
        assert plan.window == pytest.approx(5e-6)
        assert plan.counter_bits == 10


class TestSignalSchedule:
    def test_measurement_schedule(self):
        sched = SignalSchedule.for_measurement(5, [True, False, True,
                                                   False, False])
        assert sched.te == 1
        assert sched.oe == 1
        assert sched.by == (0, 1, 0, 1, 1)

    def test_functional_schedule(self):
        sched = SignalSchedule.functional(3)
        assert sched.te == 0
        assert sched.by == (1, 1, 1)

    def test_mask_length_validated(self):
        with pytest.raises(ValueError):
            SignalSchedule.for_measurement(5, [True])


class TestQuantizedMeasurement:
    def test_estimate_close_to_true_period(self, controller, engine):
        tsvs = [Tsv()] * 5
        true_t = engine.period(tsvs, [False] * 5)
        estimate = controller.measure_period(tsvs, [False] * 5)
        assert estimate == pytest.approx(true_t, rel=1e-3)

    def test_delta_t_sign_preserved_for_open(self, controller):
        tsvs = [Tsv(fault=ResistiveOpen(2000.0, 0.3))] + [Tsv()] * 4
        healthy = [Tsv()] * 5
        dt_faulty = controller.measure_delta_t(tsvs, under_test=[0])
        dt_healthy = controller.measure_delta_t(healthy, under_test=[0])
        assert dt_faulty < dt_healthy

    def test_stuck_oscillator_raises(self, controller):
        tsvs = [Tsv(fault=Leakage(50.0))] + [Tsv()] * 4
        with pytest.raises(RuntimeError):
            controller.measure_delta_t(tsvs, under_test=[0])

    def test_overflow_raises(self, engine):
        tiny = Controller(engine, MeasurementPlan(window=20e-6,
                                                      counter_bits=6))
        with pytest.raises(RuntimeError, match="overflow"):
            tiny.measure_period([Tsv()] * 5, [False] * 5)

    def test_log_records_measurements(self, controller):
        controller.measure_delta_t([Tsv()] * 5, under_test=[0])
        assert len(controller.log) == 2
        assert all("count" in entry for entry in controller.log)

    def test_guard_band_formula(self, controller):
        guard = controller.quantization_guard_band(5e-9)
        assert guard == pytest.approx(2 * 25e-18 / (20e-6 - 5e-9), rel=0.01)

    def test_total_test_time_scales(self, controller):
        t1 = controller.total_test_time(num_groups=10,
                                        per_group_measurements=6)
        t2 = controller.total_test_time(num_groups=20,
                                        per_group_measurements=6)
        assert t2 == pytest.approx(2 * t1)
