"""Unit tests for the ring-oscillator netlist builder (Fig. 3)."""

import pytest

from repro.core.segments import (
    RingOscillatorConfig,
    build_ring_oscillator,
)
from repro.core.tsv import Tsv


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = RingOscillatorConfig()
        assert cfg.num_segments == 5
        assert cfg.vdd == pytest.approx(1.1)
        assert cfg.driver_strength == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RingOscillatorConfig(num_segments=0)
        with pytest.raises(ValueError):
            RingOscillatorConfig(vdd=-1.0)


class TestBuild:
    def test_requires_matching_tsv_count(self):
        with pytest.raises(ValueError):
            build_ring_oscillator([Tsv()] * 3, RingOscillatorConfig())

    def test_requires_matching_enabled_mask(self):
        with pytest.raises(ValueError):
            build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig(),
                                  enabled=[True, False])

    def test_pad_per_segment(self):
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig())
        assert len(ro.pad_nodes) == 5
        assert len(set(ro.pad_nodes)) == 5

    def test_by_sources_follow_enabled_mask(self):
        enabled = [True, False, True, False, False]
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig(),
                                   enabled=enabled)
        by_values = {
            src.name: src.waveform.value(0.0)
            for src in ro.circuit.vsources if src.name.startswith("v_by")
        }
        # BY[i] = 0 includes the TSV (paper polarity).
        assert by_values["v_by1"] == 0.0
        assert by_values["v_by2"] == pytest.approx(1.1)
        assert by_values["v_by3"] == 0.0

    def test_te_high_in_test_mode(self):
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig())
        te = next(s for s in ro.circuit.vsources if s.name == "v_te")
        oe = next(s for s in ro.circuit.vsources if s.name == "v_oe")
        assert te.waveform.value(0.0) == pytest.approx(1.1)
        assert oe.waveform.value(0.0) == pytest.approx(1.1)

    def test_functional_mode_disables_loop(self):
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig(),
                                   test_enable=False)
        te = next(s for s in ro.circuit.vsources if s.name == "v_te")
        assert te.waveform.value(0.0) == 0.0

    def test_two_muxes_per_tsv_plus_te_mux(self):
        """The DfT cost model assumes 2 muxes per TSV; the builder adds
        one bypass mux per segment plus the shared TE mux."""
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig())
        muxes = [i for i in ro.kit.instances if "mux" in i]
        assert len(muxes) == 6  # 5 bypass + 1 TE

    def test_startup_ics_cover_loop_and_pads(self):
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig())
        assert "loop_in" in ro.startup_ics
        for pad in ro.pad_nodes:
            assert pad in ro.startup_ics

    def test_measurement_threshold_is_half_vdd(self):
        cfg = RingOscillatorConfig(vdd=0.8)
        ro = build_ring_oscillator([Tsv()] * 5, cfg)
        assert ro.measurement_threshold == pytest.approx(0.4)

    def test_sweepable_build_exposes_fault_resistors(self):
        ro = build_ring_oscillator([Tsv()] * 5, RingOscillatorConfig(),
                                   sweepable_tsvs=True)
        assert all("ro" in e and "rl" in e for e in ro.tsv_elements)

    def test_single_segment_ring(self):
        cfg = RingOscillatorConfig(num_segments=1)
        ro = build_ring_oscillator([Tsv()], cfg, enabled=[True])
        assert len(ro.pad_nodes) == 1
