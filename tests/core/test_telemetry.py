"""Unit tests for the telemetry registry."""

import math
import time

import pytest

from repro.telemetry import (
    Histogram,
    Telemetry,
    get_telemetry,
    telemetry_phase,
    use_telemetry,
)


class TestCounters:
    def test_incr_creates_and_accumulates(self):
        tele = Telemetry()
        tele.incr("newton_iterations")
        tele.incr("newton_iterations", 4)
        assert tele.count("newton_iterations") == 5

    def test_absent_counter_reads_zero(self):
        assert Telemetry().count("no_such_counter") == 0

    def test_cache_hit_rate(self):
        tele = Telemetry()
        assert tele.cache_hit_rate == 0.0
        tele.incr("cache_hits", 3)
        tele.incr("cache_misses", 1)
        assert tele.cache_hit_rate == pytest.approx(0.75)


class TestPhases:
    def test_phase_accumulates_wall_time(self):
        tele = Telemetry()
        with tele.phase("screen"):
            time.sleep(0.01)
        with tele.phase("screen"):
            pass
        assert tele.phase_seconds["screen"] >= 0.01

    def test_phase_records_even_on_exception(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.phase("boom"):
                raise RuntimeError("x")
        assert "boom" in tele.phase_seconds

    def test_telemetry_phase_targets_current_registry(self):
        with use_telemetry() as tele:
            with telemetry_phase("characterize"):
                pass
        assert "characterize" in tele.phase_seconds


class TestScoping:
    def test_use_telemetry_swaps_and_restores(self):
        outer = get_telemetry()
        with use_telemetry() as inner:
            assert get_telemetry() is inner
            assert inner is not outer
        assert get_telemetry() is outer

    def test_nested_scopes(self):
        with use_telemetry() as a:
            a.incr("x")
            with use_telemetry() as b:
                get_telemetry().incr("x")
            assert b.count("x") == 1
        assert a.count("x") == 1


class TestTransport:
    def test_snapshot_is_plain_and_detached(self):
        tele = Telemetry()
        tele.incr("dense_solves", 2)
        tele.add_phase_time("screen", 1.5)
        snap = tele.snapshot()
        tele.incr("dense_solves")
        assert snap == {
            "counters": {"dense_solves": 2},
            "phase_seconds": {"screen": 1.5},
        }

    def test_merge_registry_and_snapshot(self):
        a = Telemetry()
        a.incr("cache_hits", 2)
        a.add_phase_time("screen", 1.0)
        b = Telemetry()
        b.incr("cache_hits", 3)
        b.incr("step_retries")
        b.add_phase_time("screen", 0.5)
        a.merge(b)
        a.merge(b.snapshot())
        assert a.count("cache_hits") == 8
        assert a.count("step_retries") == 2
        assert a.phase_seconds["screen"] == pytest.approx(2.0)

    def test_reset(self):
        tele = Telemetry()
        tele.incr("x")
        tele.add_phase_time("p", 1.0)
        tele.reset()
        assert tele.counters == {}
        assert tele.phase_seconds == {}


class TestInstrumentationHooks:
    def test_newton_solves_are_counted(self):
        from repro.spice import Circuit, DC, NMOS_45LP, PMOS_45LP
        from repro.spice.dc import dc_operating_point
        from repro.spice.netlist import GROUND

        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(1.1))
        c.add_vsource("vin", "in", GROUND, DC(0.55))
        c.add_mosfet("mp", "out", "in", "vdd", "vdd", PMOS_45LP, w=0.8e-6)
        c.add_mosfet("mn", "out", "in", GROUND, GROUND, NMOS_45LP, w=0.4e-6)
        with use_telemetry() as tele:
            dc_operating_point(c)
        assert tele.count("newton_solves") >= 1
        assert tele.count("newton_iterations") >= tele.count("newton_solves")

    def test_legacy_shim_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.core.telemetry  # noqa: F401


class TestHistograms:
    def test_observe_tracks_exact_count_total_min_max(self):
        hist = Histogram()
        for v in (0.001, 0.01, 0.25, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(4.261)
        assert hist.min == 0.001
        assert hist.max == 4.0
        assert hist.mean == pytest.approx(4.261 / 4)

    def test_empty_histogram_quantiles_are_nan(self):
        hist = Histogram()
        assert math.isnan(hist.mean)
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_is_conservative_bucket_edge(self):
        hist = Histogram()
        for v in [0.010] * 98 + [1.0, 2.0]:
            hist.observe(v)
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        # p50 lands in the 10 ms bucket: >= the value, within one
        # bucket's relative width above it.
        assert 0.010 <= p50 <= 0.010 * 10 ** 0.25
        assert 1.0 <= p99 <= 2.0
        assert hist.quantile(1.0) == 2.0

    def test_nonpositive_values_use_underflow_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(5.0)
        assert hist.count == 2
        assert hist.quantile(0.25) == 0.0

    def test_telemetry_observe_and_snapshot_roundtrip(self):
        tele = Telemetry()
        snap_before = tele.snapshot()
        assert "histograms" not in snap_before  # historical shape kept
        tele.observe("service.solve_s", 0.125)
        tele.observe("service.solve_s", 0.25)
        snap = tele.snapshot()
        assert snap["histograms"]["service.solve_s"]["count"] == 2
        other = Telemetry()
        other.observe("service.solve_s", 0.5)
        other.merge(snap)
        assert other.histogram("service.solve_s").count == 3
        assert other.histogram("service.solve_s").max == 0.5
        other.reset()
        assert other.histograms == {}

    def test_merge_accepts_json_stringified_bucket_keys(self):
        hist = Histogram()
        hist.observe(0.1)
        snap = hist.snapshot()
        snap["buckets"] = {str(k): v for k, v in snap["buckets"].items()}
        fresh = Histogram()
        fresh.merge(snap)
        assert fresh.count == 1
        assert fresh.quantile(1.0) == pytest.approx(0.1)
