"""Unit tests for TSV electrical models and fault taxonomy."""

import math

import pytest

from repro.core.tsv import (
    FaultFree,
    Leakage,
    ResistiveOpen,
    Tsv,
    TsvParameters,
    TSV_DEFAULT,
)
from repro.spice import Circuit
from repro.spice.netlist import GROUND


class TestParameters:
    def test_literature_defaults(self):
        assert TSV_DEFAULT.params.resistance == pytest.approx(0.1)
        assert TSV_DEFAULT.params.capacitance == pytest.approx(59e-15)

    def test_scaled(self):
        p = TsvParameters().scaled(1.1)
        assert p.capacitance == pytest.approx(59e-15 * 1.1)
        assert p.resistance == pytest.approx(0.1)

    def test_rejects_unphysical(self):
        with pytest.raises(ValueError):
            TsvParameters(capacitance=0.0)
        with pytest.raises(ValueError):
            TsvParameters(resistance=-1.0)


class TestFaultModels:
    def test_fault_free_flags(self):
        assert not Tsv().is_faulty
        assert Tsv().fault.kind == "fault_free"

    def test_resistive_open_validation(self):
        with pytest.raises(ValueError):
            ResistiveOpen(r_open=0.0)
        with pytest.raises(ValueError):
            ResistiveOpen(r_open=100.0, x=1.5)

    def test_leakage_validation(self):
        with pytest.raises(ValueError):
            Leakage(r_leak=-10.0)

    def test_describe_strings(self):
        assert "fault-free" in FaultFree().describe()
        assert "open" in ResistiveOpen(1000.0, 0.3).describe()
        assert "leakage" in Leakage(2000.0).describe()

    def test_with_fault_returns_new_tsv(self):
        base = Tsv()
        faulty = base.with_fault(Leakage(500.0))
        assert faulty.is_faulty
        assert not base.is_faulty

    def test_infinite_open_allowed(self):
        fault = ResistiveOpen(r_open=math.inf, x=0.5)
        assert math.isinf(fault.r_open)


class TestLumpedBuild:
    def test_fault_free_is_single_capacitor(self):
        c = Circuit()
        elements = Tsv().build(c, "t1", "pad")
        assert list(elements) == ["ctop"]
        assert len(c.capacitors) == 1
        assert c.capacitors[0].capacitance == pytest.approx(59e-15)

    def test_resistive_open_splits_capacitance(self):
        c = Circuit()
        tsv = Tsv(fault=ResistiveOpen(r_open=1000.0, x=0.3))
        elements = tsv.build(c, "t1", "pad")
        caps = {cap.name: cap.capacitance for cap in c.capacitors}
        assert caps[elements["ctop"]] == pytest.approx(0.3 * 59e-15)
        assert caps[elements["cbot"]] == pytest.approx(0.7 * 59e-15)
        res = c.resistors[0]
        assert res.resistance == pytest.approx(1000.0)

    def test_full_open_becomes_large_resistance(self):
        c = Circuit()
        Tsv(fault=ResistiveOpen(r_open=math.inf, x=0.5)).build(c, "t1", "pad")
        assert c.resistors[0].resistance == pytest.approx(1e15)

    def test_leakage_is_parallel_resistor(self):
        c = Circuit()
        tsv = Tsv(fault=Leakage(r_leak=2000.0))
        elements = tsv.build(c, "t1", "pad")
        res = c.resistors[0]
        assert res.name == elements["rl"]
        assert {res.n1, res.n2} == {"pad", GROUND}

    def test_capacitance_is_preserved_across_fault_models(self):
        for fault in (FaultFree(), ResistiveOpen(1000.0, 0.4), Leakage(3000.0)):
            c = Circuit()
            Tsv(fault=fault).build(c, "t1", "pad")
            total = sum(cap.capacitance for cap in c.capacitors)
            assert total == pytest.approx(59e-15)


class TestSweepableBuild:
    def test_both_fault_resistors_exist(self):
        c = Circuit()
        elements = Tsv().build_sweepable(c, "t1", "pad")
        names = {r.name for r in c.resistors}
        assert elements["ro"] in names
        assert elements["rl"] in names

    def test_benign_defaults(self):
        c = Circuit()
        elements = Tsv().build_sweepable(c, "t1", "pad")
        by_name = {r.name: r.resistance for r in c.resistors}
        assert by_name[elements["ro"]] <= 0.1    # effectively a short
        assert by_name[elements["rl"]] >= 1e12   # effectively open

    def test_open_location_sets_cap_split(self):
        c = Circuit()
        tsv = Tsv(fault=ResistiveOpen(r_open=500.0, x=0.2))
        elements = tsv.build_sweepable(c, "t1", "pad")
        caps = {cap.name: cap.capacitance for cap in c.capacitors}
        assert caps[elements["ctop"]] == pytest.approx(0.2 * 59e-15)


class TestDistributedBuild:
    def test_segment_count(self):
        c = Circuit()
        Tsv().build_distributed(c, "t1", "pad", segments=10)
        assert len(c.capacitors) == 10
        assert len(c.resistors) == 10

    def test_total_rc_preserved(self):
        c = Circuit()
        Tsv().build_distributed(c, "t1", "pad", segments=7)
        assert sum(cap.capacitance for cap in c.capacitors) == pytest.approx(59e-15)
        assert sum(r.resistance for r in c.resistors) == pytest.approx(0.1)

    def test_open_fault_inserted_at_location(self):
        c = Circuit()
        tsv = Tsv(fault=ResistiveOpen(r_open=1000.0, x=0.5))
        elements = tsv.build_distributed(c, "t1", "pad", segments=10)
        by_name = {r.name: r.resistance for r in c.resistors}
        assert by_name[elements["ro"]] == pytest.approx(1000.0 + 0.01)

    def test_leakage_attached_at_front(self):
        c = Circuit()
        elements = Tsv(fault=Leakage(r_leak=800.0)).build_distributed(
            c, "t1", "pad", segments=5
        )
        leak = next(r for r in c.resistors if r.name == elements["rl"])
        assert "pad" in (leak.n1, leak.n2)

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            Tsv().build_distributed(Circuit(), "t1", "pad", segments=0)
