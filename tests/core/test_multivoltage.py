"""Unit tests for multi-voltage test planning."""

import math

import pytest

from repro.core.engines.registry import spec as engine_spec
from repro.core.multivoltage import (
    MultiVoltagePlan,
    PAPER_VOLTAGES,
    detectable_leakage_range,
    leakage_stop_threshold,
)


@pytest.fixture(scope="module")
def factory():
    return engine_spec("analytic")


class TestStopThreshold:
    def test_threshold_is_kohm_scale(self, factory):
        r = leakage_stop_threshold(factory, 1.1)
        assert 100.0 < r < 10000.0

    def test_threshold_drops_with_vdd(self, factory):
        """Fig. 8's central observation."""
        thresholds = [leakage_stop_threshold(factory, v)
                      for v in PAPER_VOLTAGES]
        # PAPER_VOLTAGES is ascending, thresholds must descend.
        assert all(b < a for a, b in zip(thresholds, thresholds[1:]))

    def test_bisection_matches_engine_threshold(self, factory):
        engine = factory(1.1)
        r_measured = leakage_stop_threshold(factory, 1.1)
        r_analytic = engine.oscillation_stop_r_leak()
        assert r_measured == pytest.approx(r_analytic, rel=0.1)


class TestDetectableRange:
    def test_range_is_ordered(self, factory):
        r_stop, r_max = detectable_leakage_range(factory, 0.8, 20e-12)
        assert r_stop < r_max

    def test_looser_criterion_widens_range(self, factory):
        _, r_max_tight = detectable_leakage_range(factory, 0.8, 50e-12)
        _, r_max_loose = detectable_leakage_range(factory, 0.8, 5e-12)
        assert r_max_loose >= r_max_tight


class TestPlan:
    @pytest.fixture(scope="class")
    def plan(self, factory):
        return MultiVoltagePlan.characterize(factory, PAPER_VOLTAGES,
                                             min_delta_t_shift=20e-12)

    def test_entry_per_voltage(self, plan):
        assert plan.voltages == list(PAPER_VOLTAGES)

    def test_multiple_voltages_cover_wider_range(self, plan, factory):
        """The paper's thesis: the voltage set tiles more leakage decades
        than any single voltage."""
        single = MultiVoltagePlan.characterize(factory, [1.1],
                                               min_delta_t_shift=20e-12)
        combined_max = plan.max_detectable_leakage()
        assert combined_max > single.max_detectable_leakage()

    def test_covers_strong_leak(self, plan):
        assert plan.covers(500.0)

    def test_does_not_cover_absurdly_weak_leak(self, plan):
        assert not plan.covers(1e9)

    def test_best_voltage_prefers_sensitive_window(self, plan):
        """Strong leakage -> high voltage; weak leakage -> low voltage."""
        strong = plan.best_voltage_for(600.0)
        weak = plan.best_voltage_for(2000.0)
        assert strong is not None and weak is not None
        assert strong > weak

    def test_summary_rows_structure(self, plan):
        rows = plan.summary_rows()
        assert len(rows) == len(PAPER_VOLTAGES)
        assert all({"vdd", "r_stop_ohm", "r_max_detect_ohm",
                    "window_decades"} <= set(r) for r in rows)
