"""Unit tests for the test session (bands and classification)."""

import math

import numpy as np
import pytest

from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.session import PrebondTestSession, ReferenceBand
from repro.core.session import TestDecision as Decision
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation


@pytest.fixture(scope="module")
def engine():
    return AnalyticEngine(RingOscillatorConfig(vdd=1.1))


@pytest.fixture(scope="module")
def session(engine):
    return PrebondTestSession(engine, variation=ProcessVariation(),
                              num_characterization_samples=60)


class TestReferenceBand:
    def test_from_samples_spans_extremes(self):
        band = ReferenceBand.from_samples(np.array([1.0, 2.0, 3.0]))
        assert band.low == 1.0
        assert band.high == 3.0

    def test_guard_widens_band(self):
        band = ReferenceBand.from_samples(np.array([1.0, 3.0]), guard=0.5)
        assert band.low == 0.5
        assert band.high == 3.5

    def test_nan_samples_ignored(self):
        band = ReferenceBand.from_samples(np.array([1.0, np.nan, 2.0]))
        assert band.high == 2.0

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ReferenceBand.from_samples(np.array([np.nan]))

    def test_inverted_band_rejected(self):
        with pytest.raises(ValueError):
            ReferenceBand(2.0, 1.0)

    def test_contains(self):
        band = ReferenceBand(1.0, 2.0)
        assert band.contains(1.5)
        assert not band.contains(0.5)
        assert not band.contains(2.5)


class TestClassification:
    def test_fault_free_passes(self, session):
        outcome = session.measure(Tsv())
        assert outcome.decision is Decision.PASS
        assert not outcome.is_faulty

    def test_large_open_flagged_as_open(self, session):
        outcome = session.measure(Tsv(fault=ResistiveOpen(3000.0, 0.3)))
        assert outcome.decision is Decision.RESISTIVE_OPEN

    def test_strong_leak_flagged_as_stuck(self, session, engine):
        r_stop = engine.oscillation_stop_r_leak()
        outcome = session.measure(Tsv(fault=Leakage(r_stop / 2)))
        assert outcome.decision is Decision.STUCK

    def test_near_threshold_leak_flagged_as_leakage(self, session, engine):
        r_stop = engine.oscillation_stop_r_leak()
        outcome = session.measure(Tsv(fault=Leakage(r_stop * 1.1)))
        assert outcome.decision is Decision.LEAKAGE

    def test_classify_external_value(self, session):
        below = session.classify(session.band.low - 1e-12)
        above = session.classify(session.band.high + 1e-12)
        inside = session.classify((session.band.low + session.band.high) / 2)
        assert below.decision is Decision.RESISTIVE_OPEN
        assert above.decision is Decision.LEAKAGE
        assert inside.decision is Decision.PASS

    def test_nan_classified_as_stuck(self, session):
        assert session.classify(math.nan).decision is Decision.STUCK

    def test_outcome_carries_band_and_vdd(self, session):
        outcome = session.measure(Tsv())
        assert outcome.vdd == pytest.approx(1.1)
        assert outcome.band_low <= outcome.delta_t <= outcome.band_high


class TestConstruction:
    def test_explicit_band_used(self, engine):
        band = ReferenceBand(0.0, 1.0)
        session = PrebondTestSession(engine, band=band)
        assert session.band is band

    def test_tolerance_fallback_without_variation(self, engine):
        session = PrebondTestSession(engine)
        nominal = engine.delta_t(Tsv())
        assert session.band.contains(nominal)

    def test_guard_widens_characterized_band(self, engine):
        tight = PrebondTestSession(engine, variation=ProcessVariation(),
                                   num_characterization_samples=40, guard=0.0)
        wide = PrebondTestSession(engine, variation=ProcessVariation(),
                                  num_characterization_samples=40,
                                  guard=50e-12)
        assert wide.band.low < tight.band.low
        assert wide.band.high > tight.band.high

    def test_screen_multiple(self, session):
        outcomes = session.screen([Tsv(), Tsv(fault=ResistiveOpen(3000.0, 0.3))])
        assert [o.is_faulty for o in outcomes] == [False, True]
