"""Unit tests for the DfT area model -- anchored to the paper's numbers."""

import pytest

from repro.core.area import DftAreaModel


class TestPaperExample:
    """Sec. IV-D: 1000 TSVs, N = 5, Nangate areas."""

    @pytest.fixture(scope="class")
    def model(self):
        return DftAreaModel(num_tsvs=1000, group_size=5)

    def test_oscillator_area_matches_paper(self, model):
        # 2000 * 3.75 + 200 * 1.41 = 7782 um^2
        assert model.oscillator_area_um2 == pytest.approx(7782.0)

    def test_below_one_hundredth_mm2(self, model):
        assert model.oscillator_area_um2 < 0.01e6

    def test_fraction_of_die_below_paper_bound(self, model):
        """Paper: < 0.04% of a 25 mm^2 die (for the oscillators; the
        shared measurement/control logic keeps the total in the same
        ballpark)."""
        assert model.oscillator_area_um2 / 25e6 < 0.0004
        assert model.fraction_of_die(25.0) < 0.0008

    def test_num_groups(self, model):
        assert model.num_groups == 200


class TestScaling:
    def test_larger_groups_fewer_inverters(self):
        small_groups = DftAreaModel(num_tsvs=1000, group_size=2)
        large_groups = DftAreaModel(num_tsvs=1000, group_size=10)
        assert large_groups.oscillator_area_um2 < small_groups.oscillator_area_um2

    def test_mux_area_dominates(self):
        model = DftAreaModel(num_tsvs=1000, group_size=5)
        mux_area = 1000 * 2 * model.mux_area_um2
        assert mux_area / model.oscillator_area_um2 > 0.9

    def test_partial_last_group_rounds_up(self):
        model = DftAreaModel(num_tsvs=101, group_size=5)
        assert model.num_groups == 21

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            DftAreaModel(num_tsvs=0)
        with pytest.raises(ValueError):
            DftAreaModel(num_tsvs=10, group_size=0)


class TestMeasurementLogic:
    def test_lfsr_smaller_than_counter(self):
        """The paper's stated LFSR advantage: fewer gates for the same
        count ceiling."""
        model = DftAreaModel()
        counter = model.measurement_area_um2(counter_bits=10, use_lfsr=False)
        lfsr = model.measurement_area_um2(counter_bits=10, use_lfsr=True)
        assert lfsr < counter

    def test_total_includes_all_blocks(self):
        model = DftAreaModel()
        total = model.total_area_um2()
        assert total > model.oscillator_area_um2
        assert total == pytest.approx(
            model.oscillator_area_um2
            + model.measurement_area_um2()
            + model.control_area_um2()
        )

    def test_report_keys(self):
        report = DftAreaModel().report()
        for key in ("num_tsvs", "oscillator_area_um2", "fraction_of_die"):
            assert key in report
