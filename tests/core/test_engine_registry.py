"""Unit tests for the capability-typed engine registry.

Covers name/alias resolution, ``EngineSpec`` construction and pickling
(the unit of engine identity that crosses worker-process boundaries),
declared capabilities vs the generic base-class fallbacks, the unified
stop-time policy, the ``measure`` envelope, and workload entry by
engine name.
"""

import math
import pickle
from dataclasses import dataclass, field, replace

import numpy as np
import pytest

from repro.core.engines import (
    AnalyticEngine,
    CapabilityError,
    Engine,
    EngineCapabilities,
    MeasurementRequest,
    StageDelayEngine,
    StopTimePolicy,
    TransistorLevelEngine,
    supports,
)
from repro.core.engines import registry
from repro.core.engines.registry import EngineSpec, as_engine_factory
from repro.core.segments import RingOscillatorConfig
from repro.core.session import (
    PrebondTestSession,
    ReferenceBand,
    TestDecision as Decision,  # aliased so pytest does not collect it
)
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation


@dataclass
class _ToyEngine(Engine):
    """Unregistered minimal backend exercising the generic fallbacks."""

    config: RingOscillatorConfig = field(
        default_factory=RingOscillatorConfig
    )

    def period(self, tsvs, enabled, sample=None):
        return 1e-9

    def delta_t(self, tsv, m=1, variation=None, seed=0):
        if isinstance(tsv.fault, Leakage) and tsv.fault.r_leak < 500.0:
            raise RuntimeError("oscillation stops")
        return 1e-10 * m * (1.0 + (seed % 7) * 1e-3)


class TestNamesAndAliases:
    def test_builtins_registered(self):
        assert registry.names() == ["analytic", "stagedelay", "transistor"]

    @pytest.mark.parametrize("alias,cls", [
        ("analytic", AnalyticEngine),
        ("closed-form", AnalyticEngine),
        ("stagedelay", StageDelayEngine),
        ("stage", StageDelayEngine),
        ("stage-delay", StageDelayEngine),
        ("transistor", TransistorLevelEngine),
        ("transistor-level", TransistorLevelEngine),
        ("full-loop", TransistorLevelEngine),
        ("ANALYTIC", AnalyticEngine),
    ])
    def test_get_resolves_names_and_aliases(self, alias, cls):
        assert isinstance(registry.get(alias), cls)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="analytic"):
            registry.get("spice3f5")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @registry.register("analytic")
            class Impostor(_ToyEngine):
                pass

    def test_get_applies_config_vdd_and_options(self):
        cfg = RingOscillatorConfig(num_segments=3, vdd=1.1)
        engine = registry.get("stage", config=cfg, vdd=0.8,
                              timestep=4e-12)
        assert isinstance(engine, StageDelayEngine)
        assert engine.config.vdd == 0.8
        assert engine.config.num_segments == 3
        assert engine.timestep == 4e-12


class TestEngineSpec:
    def test_alias_canonicalized_and_options_sorted(self):
        a = registry.spec("stage", timestep=1e-12, input_slew=10e-12)
        b = EngineSpec("stagedelay", options=(
            ("timestep", 1e-12), ("input_slew", 10e-12),
        ))
        assert a == b
        assert a.name == "stagedelay"
        assert a.options == (("input_slew", 10e-12), ("timestep", 1e-12))

    def test_spec_is_a_vdd_keyed_factory(self):
        spec = registry.spec("analytic")
        engine = spec(0.75)
        assert isinstance(engine, AnalyticEngine)
        assert engine.config.vdd == 0.75

    def test_build_preserves_explicit_config(self):
        cfg = RingOscillatorConfig(num_segments=2, vdd=0.9)
        engine = registry.spec("analytic", config=cfg).build()
        assert engine.config == cfg

    def test_pickle_round_trip(self):
        spec = registry.spec("stagedelay", timestep=1e-12)
        revived = pickle.loads(pickle.dumps(spec))
        assert revived == spec
        assert revived.build(vdd=0.8) == spec.build(vdd=0.8)

    def test_describe_reports_capabilities(self):
        info = registry.spec("analytic").describe()
        assert info["name"] == "analytic"
        assert info["capabilities"]["oscillation_stop"] is True


class TestAsEngineFactory:
    def test_string_becomes_spec(self):
        factory = as_engine_factory("analytic")
        assert isinstance(factory, EngineSpec)
        assert isinstance(factory(1.1), AnalyticEngine)

    def test_spec_passes_through(self):
        spec = registry.spec("analytic")
        assert as_engine_factory(spec) is spec

    def test_engine_instance_becomes_equivalent_spec(self):
        engine = StageDelayEngine(
            config=RingOscillatorConfig(num_segments=3), timestep=4e-12
        )
        factory = as_engine_factory(engine)
        assert isinstance(factory, EngineSpec)
        assert factory(engine.config.vdd) == engine

    def test_callable_passes_through(self):
        def closure(vdd):
            return AnalyticEngine(RingOscillatorConfig(vdd=vdd))

        assert as_engine_factory(closure) is closure

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_engine_factory(42)


class TestCapabilities:
    def test_declared_capability_table(self):
        caps = {n: registry.engine_class(n).capabilities
                for n in registry.names()}
        assert caps["analytic"].batched_mc
        assert caps["analytic"].oscillation_stop
        assert not caps["analytic"].preflight_circuits
        assert caps["stagedelay"].batched_mc
        assert caps["stagedelay"].parameter_sweeps
        assert caps["stagedelay"].preflight_circuits
        assert not caps["transistor"].batched_mc
        assert caps["transistor"].preflight_circuits

    def test_supports_reads_declared_capabilities(self):
        analytic = registry.get("analytic")
        assert supports(analytic, "oscillation_stop")
        assert not supports(analytic, "preflight_circuits")

    def test_supports_falls_back_to_hasattr_for_ducks(self):
        class Duck:
            def delta_t(self, tsv, m=1):
                return 0.0

            def delta_t_mc(self, tsv, variation, n, m=1, seed=0):
                return np.zeros(n)

        assert supports(Duck(), "batched_mc")
        assert not supports(Duck(), "oscillation_stop")

    def test_missing_capability_raises_structured_error(self):
        analytic = registry.get("analytic")
        with pytest.raises(CapabilityError) as err:
            analytic.preflight_circuits()
        assert err.value.engine == "analytic"
        assert err.value.capability == "preflight_circuits"
        assert isinstance(err.value, RuntimeError)

    def test_numeric_engine_has_no_closed_form_stop(self):
        toy = _ToyEngine()
        with pytest.raises(CapabilityError):
            toy.oscillation_stop_r_leak()


class TestGenericFallbacks:
    def test_scalar_mc_is_seeded_and_deterministic(self):
        toy = _ToyEngine()
        a = toy.delta_t_mc(Tsv(), ProcessVariation(), 4, seed=3)
        b = toy.delta_t_mc(Tsv(), ProcessVariation(), 4, seed=3)
        c = toy.delta_t_mc(Tsv(), ProcessVariation(), 4, seed=4)
        assert a.shape == (4,)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_scalar_mc_marks_stuck_samples_nan(self):
        toy = _ToyEngine()
        samples = toy.delta_t_mc(
            Tsv(fault=Leakage(100.0)), ProcessVariation(), 3
        )
        assert np.isnan(samples).all()

    def test_generic_sweeps_cover_stuck_and_fault_free(self):
        toy = _ToyEngine()
        rl = toy.delta_t_sweep_rl([100.0, 1e6])
        assert math.isnan(rl[0]) and math.isfinite(rl[1])
        ro = toy.delta_t_sweep_ro([0.0, 1000.0])
        assert np.isfinite(ro).all()


class TestStopTimePolicy:
    def test_transistor_loop_window_matches_legacy_formula(self):
        engine = TransistorLevelEngine(
            config=RingOscillatorConfig(), min_cycles=3, skip_cycles=2
        )
        estimate = 0.7e-9
        want = max(2e-9, estimate * (2 + 3 + 3))
        assert engine.stop_time(estimate) == pytest.approx(want)
        assert engine.stop_time(1e-12) == 2e-9  # floor

    def test_stage_pulse_window_matches_legacy_formula(self):
        engine = StageDelayEngine(config=RingOscillatorConfig(),
                                  pulse_width=1.0e-9)
        assert engine.stop_time() == pytest.approx(
            0.15e-9 + 1.0e-9 + 1.0e-9
        )

    def test_policy_override_changes_window(self):
        engine = StageDelayEngine(config=RingOscillatorConfig())
        tight = replace(engine,
                        stop_policy=StopTimePolicy(settle=0.5e-9))
        assert tight.stop_time() < engine.stop_time()


class TestMeasureEnvelope:
    @pytest.fixture(scope="class")
    def analytic(self):
        return registry.get("analytic")

    def test_scalar_measure_matches_delta_t(self, analytic):
        result = analytic.measure(MeasurementRequest(tsv=Tsv(), m=2))
        assert result.delta_t == analytic.delta_t(Tsv(), m=2)
        assert result.engine == "analytic"
        assert result.m == 2
        assert not result.stuck

    def test_vdd_override_rebinds_for_one_call(self, analytic):
        result = analytic.measure(MeasurementRequest(tsv=Tsv(), vdd=0.8))
        assert result.vdd == 0.8
        assert result.delta_t == analytic.at_vdd(0.8).delta_t(Tsv())
        assert analytic.config.vdd == 1.1  # caller engine untouched

    def test_stuck_oscillator_reports_nan_not_raise(self, analytic):
        stop = analytic.oscillation_stop_r_leak()
        result = analytic.measure(
            MeasurementRequest(tsv=Tsv(fault=Leakage(0.5 * stop)))
        )
        assert result.stuck and math.isnan(result.delta_t)

    def test_mc_measure_returns_population(self, analytic):
        request = MeasurementRequest(
            tsv=Tsv(), variation=ProcessVariation(), num_samples=5,
            seed=11, tags={"die": "7"},
        )
        result = analytic.measure(request)
        assert result.samples.shape == (5,)
        assert result.delta_t == result.samples[0]
        assert result.tags == {"die": "7"}

    def test_at_vdd_is_identity_at_same_supply(self, analytic):
        assert analytic.at_vdd(analytic.config.vdd) is analytic
        rebound = analytic.at_vdd(0.9)
        assert type(rebound) is type(analytic)
        assert rebound.config.vdd == 0.9


class TestWorkloadEntryByName:
    def test_session_accepts_engine_name(self):
        engine = registry.get("analytic")
        samples = engine.delta_t_mc(Tsv(), ProcessVariation(), 50, seed=2)
        band = ReferenceBand.from_samples(samples, guard=2e-12)
        session = PrebondTestSession("analytic", band=band)
        assert isinstance(session.engine, AnalyticEngine)
        outcome = session.measure(Tsv(fault=ResistiveOpen(1e4, 0.5)))
        assert outcome.decision is Decision.RESISTIVE_OPEN

    def test_engine_pickle_round_trip(self):
        engine = registry.get("analytic", vdd=0.8)
        assert engine.capabilities.picklable
        revived = pickle.loads(pickle.dumps(engine))
        assert revived == engine
        assert revived.delta_t(Tsv()) == engine.delta_t(Tsv())
