"""Integration tests for the stage-delay engine (real transistor sims).

Each test costs a fraction of a second to a few seconds; they cover the
paper's orderings on the circuit-accurate engine.  Module-scoped caches
keep the total runtime modest.
"""

import math

import numpy as np
import pytest

from repro.core.engines import StageDelayEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation
from repro.spice.waveform import NoOscillationError


@pytest.fixture(scope="module")
def engine():
    return StageDelayEngine(config=RingOscillatorConfig(vdd=1.1),
                            timestep=2e-12)


@pytest.fixture(scope="module")
def engine_low():
    return StageDelayEngine(config=RingOscillatorConfig(vdd=0.75),
                            timestep=2e-12)


@pytest.fixture(scope="module")
def ff_delta(engine):
    return engine.delta_t(Tsv())


@pytest.fixture(scope="module")
def ff_delta_low(engine_low):
    return engine_low.delta_t(Tsv())


class TestSegmentDelays:
    def test_tsv_path_slower_than_bypass(self, engine):
        on = engine.segment_delays(Tsv(), bypassed=False)
        off = engine.segment_delays(Tsv(), bypassed=True)
        assert sum(on) > sum(off)

    def test_delays_are_positive_picoseconds(self, engine):
        rise, fall = engine.segment_delays(Tsv())
        assert 10e-12 < rise < 2e-9
        assert 10e-12 < fall < 2e-9

    def test_heavier_tsv_slower(self, engine):
        light = engine.segment_delays(Tsv())
        heavy = engine.segment_delays(
            Tsv(params=Tsv().params.scaled(1.5))
        )
        assert sum(heavy) > sum(light)


class TestResistiveOpenOrdering:
    def test_open_reduces_delta_t(self, engine, ff_delta):
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        assert faulty < ff_delta

    def test_one_kohm_open_is_roughly_ten_percent(self, engine, ff_delta):
        """Fig. 6's headline number: ~10% DeltaT reduction at 1 kOhm."""
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        reduction = (ff_delta - faulty) / ff_delta
        assert 0.03 < reduction < 0.2

    def test_larger_open_larger_shift(self, engine, ff_delta):
        small = engine.delta_t(Tsv(fault=ResistiveOpen(500.0, 0.5)))
        large = engine.delta_t(Tsv(fault=ResistiveOpen(3000.0, 0.5)))
        assert large < small < ff_delta


class TestLeakageOrdering:
    def test_near_threshold_leak_increases_delta_t(self, engine, ff_delta):
        """At 1.1 V the stop threshold is below 1 kOhm; a 700 Ohm leak
        sits in the sensitive window and slows the loop."""
        faulty = engine.delta_t(Tsv(fault=Leakage(700.0)))
        assert faulty > ff_delta

    def test_strong_leak_sticks(self, engine):
        with pytest.raises(NoOscillationError):
            engine.delta_t(Tsv(fault=Leakage(200.0)))

    def test_low_voltage_sensitive_to_moderate_leak(self, engine_low,
                                                    ff_delta_low):
        """Fig. 9: a 3 kOhm leak separates clearly at 0.75 V."""
        faulty = engine_low.delta_t(Tsv(fault=Leakage(3000.0)))
        assert faulty - ff_delta_low > 20e-12

    def test_moderate_leak_invisible_at_nominal_voltage(self, engine,
                                                        ff_delta):
        """Fig. 9's counterpart: at 1.1 V the 3 kOhm signature is tiny
        (and slightly negative in our circuit -- see EXPERIMENTS.md)."""
        faulty = engine.delta_t(Tsv(fault=Leakage(3000.0)))
        assert abs(faulty - ff_delta) < 0.10 * ff_delta


class TestBatchedSweeps:
    def test_ro_sweep_monotonic(self, engine):
        values = [1.0, 500.0, 1500.0, 3000.0]
        dts = engine.delta_t_sweep_ro(values, x=0.5)
        assert np.all(np.isfinite(dts))
        assert all(b < a for a, b in zip(dts, dts[1:]))

    def test_ro_sweep_matches_scalar_at_point(self, engine, ff_delta):
        dts = engine.delta_t_sweep_ro([1.0])
        assert dts[0] == pytest.approx(ff_delta, rel=0.05)

    def test_rl_sweep_shows_stuck_region(self, engine):
        dts = engine.delta_t_sweep_rl([100.0, 50000.0])
        assert math.isnan(dts[0])       # strong leak: stuck
        assert math.isfinite(dts[1])    # weak leak: oscillates


class TestBatchedMonteCarlo:
    def test_mc_spread_and_reproducibility(self, engine, variation):
        a = engine.delta_t_mc(Tsv(), variation, 6, seed=11)
        b = engine.delta_t_mc(Tsv(), variation, 6, seed=11)
        assert np.array_equal(a, b)
        assert np.std(a) > 0

    def test_mc_mean_tracks_nominal(self, engine, ff_delta, variation):
        samples = engine.delta_t_mc(Tsv(), variation, 8, seed=3)
        assert np.mean(samples) == pytest.approx(ff_delta, rel=0.15)

    def test_mc_m_greater_one_scales_mean(self, engine, variation):
        m1 = engine.delta_t_mc(Tsv(), variation, 6, m=1, seed=9)
        m2 = engine.delta_t_mc(Tsv(), variation, 6, m=2, seed=9)
        assert np.mean(m2) == pytest.approx(2 * np.mean(m1), rel=0.2)


class TestFamilyKeyPartition:
    """The family/batch key matrix: what coalesces at which tier.

    ``batch_key`` partitions by everything including circuit content;
    ``family_key`` only by engine configuration + effective supply.  The
    matrix below pins which request pairs share which key -- the
    contract the service's ``coalesce="family"`` policy relies on.
    """

    def engine(self):
        return StageDelayEngine(timestep=40e-12)

    def req(self, **kw):
        from repro.core.engines.base import MeasurementRequest

        kw.setdefault("tsv", Tsv())
        kw.setdefault("num_samples", 1)
        return MeasurementRequest(**kw)

    def test_scalar_requests_have_no_keys(self):
        engine = self.engine()
        scalar = self.req(num_samples=None)
        assert engine.batch_key(scalar) is None
        assert engine.family_key(scalar) is None

    def test_different_faults_same_family_different_exact(self):
        engine = self.engine()
        a = self.req(tsv=Tsv())
        b = self.req(tsv=Tsv(fault=Leakage(5e4)))
        c = self.req(tsv=Tsv(fault=ResistiveOpen(2e3)))
        exact = {engine.batch_key(r) for r in (a, b, c)}
        family = {engine.family_key(r) for r in (a, b, c)}
        assert len(exact) == 3
        assert len(family) == 1

    def test_supply_splits_both_keys(self):
        engine = self.engine()
        a, b = self.req(vdd=1.1), self.req(vdd=0.8)
        assert engine.batch_key(a) != engine.batch_key(b)
        assert engine.family_key(a) != engine.family_key(b)

    def test_stop_policy_splits_both_keys(self):
        from repro.core.engines.base import StopTimePolicy

        engine = self.engine()
        a = self.req()
        b = self.req(stop_policy=StopTimePolicy(settle=2.0e-9))
        assert engine.batch_key(a) != engine.batch_key(b)
        assert engine.family_key(a) != engine.family_key(b)

    def test_engine_knobs_split_both_keys(self):
        a = StageDelayEngine(timestep=40e-12)
        b = StageDelayEngine(timestep=20e-12)
        request = self.req()
        assert a.batch_key(request) != b.batch_key(request)
        assert a.family_key(request) != b.family_key(request)

    def test_identical_requests_share_exact_key(self):
        engine = self.engine()
        assert engine.batch_key(self.req(seed=1)) == \
            engine.batch_key(self.req(seed=2))

    def test_base_class_family_degenerates_to_batch_key(self):
        from repro.core.engines import AnalyticEngine

        engine = AnalyticEngine()
        request = self.req()
        assert engine.family_key(request) == engine.batch_key(request)


class TestFamilyPackedMeasureBatch:
    """Cross-topology family packing == serial measurement, bit for bit."""

    def test_mixed_faults_pack_and_match_serial(self):
        from repro.core.engines.base import MeasurementRequest
        from repro.spice.cache import cache_disabled
        from repro.telemetry import use_telemetry

        engine = StageDelayEngine(timestep=40e-12)
        variation = ProcessVariation()
        requests = [
            MeasurementRequest(
                tsv=tsv, seed=seed, variation=variation, num_samples=1
            )
            for tsv in (
                Tsv(),
                Tsv(fault=Leakage(5e4)),
                Tsv(fault=ResistiveOpen(2e3)),
            )
            for seed in (1, 2)
        ]
        with cache_disabled():
            serial = [engine.measure(r) for r in requests]
            with use_telemetry() as tele:
                batched = engine.measure_batch(requests)
        assert len(batched) == len(serial)
        for got, want in zip(batched, serial):
            assert got.delta_t == want.delta_t
            assert got.vdd == want.vdd
            np.testing.assert_array_equal(got.samples, want.samples)
        # The equality must have been earned through one ragged pack
        # spanning all three exact groups (2 sims per group: on/bypassed).
        assert tele.count("ragged.packs") == 1
        assert tele.histogram("ragged.pack_members").max == 6
        assert tele.histogram("stagedelay.family_span").max == 3

    def test_single_group_families_keep_the_concat_path(self):
        from repro.core.engines.base import MeasurementRequest
        from repro.spice.cache import cache_disabled
        from repro.telemetry import use_telemetry

        engine = StageDelayEngine(timestep=40e-12)
        requests = [
            MeasurementRequest(
                tsv=Tsv(), seed=seed, variation=ProcessVariation(),
                num_samples=1,
            )
            for seed in (1, 2)
        ]
        with cache_disabled(), use_telemetry() as tele:
            engine.measure_batch(requests)
        assert tele.count("ragged.packs") == 0
        assert tele.histogram("stagedelay.family_span").max == 1
