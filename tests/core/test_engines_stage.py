"""Integration tests for the stage-delay engine (real transistor sims).

Each test costs a fraction of a second to a few seconds; they cover the
paper's orderings on the circuit-accurate engine.  Module-scoped caches
keep the total runtime modest.
"""

import math

import numpy as np
import pytest

from repro.core.engines import StageDelayEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation
from repro.spice.waveform import NoOscillationError


@pytest.fixture(scope="module")
def engine():
    return StageDelayEngine(config=RingOscillatorConfig(vdd=1.1),
                            timestep=2e-12)


@pytest.fixture(scope="module")
def engine_low():
    return StageDelayEngine(config=RingOscillatorConfig(vdd=0.75),
                            timestep=2e-12)


@pytest.fixture(scope="module")
def ff_delta(engine):
    return engine.delta_t(Tsv())


@pytest.fixture(scope="module")
def ff_delta_low(engine_low):
    return engine_low.delta_t(Tsv())


class TestSegmentDelays:
    def test_tsv_path_slower_than_bypass(self, engine):
        on = engine.segment_delays(Tsv(), bypassed=False)
        off = engine.segment_delays(Tsv(), bypassed=True)
        assert sum(on) > sum(off)

    def test_delays_are_positive_picoseconds(self, engine):
        rise, fall = engine.segment_delays(Tsv())
        assert 10e-12 < rise < 2e-9
        assert 10e-12 < fall < 2e-9

    def test_heavier_tsv_slower(self, engine):
        light = engine.segment_delays(Tsv())
        heavy = engine.segment_delays(
            Tsv(params=Tsv().params.scaled(1.5))
        )
        assert sum(heavy) > sum(light)


class TestResistiveOpenOrdering:
    def test_open_reduces_delta_t(self, engine, ff_delta):
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        assert faulty < ff_delta

    def test_one_kohm_open_is_roughly_ten_percent(self, engine, ff_delta):
        """Fig. 6's headline number: ~10% DeltaT reduction at 1 kOhm."""
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        reduction = (ff_delta - faulty) / ff_delta
        assert 0.03 < reduction < 0.2

    def test_larger_open_larger_shift(self, engine, ff_delta):
        small = engine.delta_t(Tsv(fault=ResistiveOpen(500.0, 0.5)))
        large = engine.delta_t(Tsv(fault=ResistiveOpen(3000.0, 0.5)))
        assert large < small < ff_delta


class TestLeakageOrdering:
    def test_near_threshold_leak_increases_delta_t(self, engine, ff_delta):
        """At 1.1 V the stop threshold is below 1 kOhm; a 700 Ohm leak
        sits in the sensitive window and slows the loop."""
        faulty = engine.delta_t(Tsv(fault=Leakage(700.0)))
        assert faulty > ff_delta

    def test_strong_leak_sticks(self, engine):
        with pytest.raises(NoOscillationError):
            engine.delta_t(Tsv(fault=Leakage(200.0)))

    def test_low_voltage_sensitive_to_moderate_leak(self, engine_low,
                                                    ff_delta_low):
        """Fig. 9: a 3 kOhm leak separates clearly at 0.75 V."""
        faulty = engine_low.delta_t(Tsv(fault=Leakage(3000.0)))
        assert faulty - ff_delta_low > 20e-12

    def test_moderate_leak_invisible_at_nominal_voltage(self, engine,
                                                        ff_delta):
        """Fig. 9's counterpart: at 1.1 V the 3 kOhm signature is tiny
        (and slightly negative in our circuit -- see EXPERIMENTS.md)."""
        faulty = engine.delta_t(Tsv(fault=Leakage(3000.0)))
        assert abs(faulty - ff_delta) < 0.10 * ff_delta


class TestBatchedSweeps:
    def test_ro_sweep_monotonic(self, engine):
        values = [1.0, 500.0, 1500.0, 3000.0]
        dts = engine.delta_t_sweep_ro(values, x=0.5)
        assert np.all(np.isfinite(dts))
        assert all(b < a for a, b in zip(dts, dts[1:]))

    def test_ro_sweep_matches_scalar_at_point(self, engine, ff_delta):
        dts = engine.delta_t_sweep_ro([1.0])
        assert dts[0] == pytest.approx(ff_delta, rel=0.05)

    def test_rl_sweep_shows_stuck_region(self, engine):
        dts = engine.delta_t_sweep_rl([100.0, 50000.0])
        assert math.isnan(dts[0])       # strong leak: stuck
        assert math.isfinite(dts[1])    # weak leak: oscillates


class TestBatchedMonteCarlo:
    def test_mc_spread_and_reproducibility(self, engine, variation):
        a = engine.delta_t_mc(Tsv(), variation, 6, seed=11)
        b = engine.delta_t_mc(Tsv(), variation, 6, seed=11)
        assert np.array_equal(a, b)
        assert np.std(a) > 0

    def test_mc_mean_tracks_nominal(self, engine, ff_delta, variation):
        samples = engine.delta_t_mc(Tsv(), variation, 8, seed=3)
        assert np.mean(samples) == pytest.approx(ff_delta, rel=0.15)

    def test_mc_m_greater_one_scales_mean(self, engine, variation):
        m1 = engine.delta_t_mc(Tsv(), variation, 6, m=1, seed=9)
        m2 = engine.delta_t_mc(Tsv(), variation, 6, m=2, seed=9)
        assert np.mean(m2) == pytest.approx(2 * np.mean(m1), rel=0.2)
