"""Cross-engine agreement: every registered engine must tell the same story.

Two layers of checks:

* the original pairwise scale agreements (stage vs analytic cheaply,
  stage vs the full transistor loop at the key points), and
* a registry-enumerated parity matrix: for every engine the registry
  knows, the paper's fault signatures must hold -- a resistive open
  *decreases* DeltaT, leakage just above the oscillation-stop threshold
  *increases* it -- at both ends of the voltage plan, and every engine
  pair must agree on the signs.  Registering a fourth backend without
  adding it to the matrix fails the coverage test on purpose.

A golden-fixture class additionally pins registry-built engines to
``tests/data/delta_t_parity.json`` so the registry construction path
provably changes no numerics.
"""

import itertools
import json
import math
from pathlib import Path

import pytest

from repro.core.engines import (
    AnalyticEngine,
    StageDelayEngine,
    TransistorLevelEngine,
)
from repro.core.engines import registry as engine_registry
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv


CFG = RingOscillatorConfig(num_segments=3, vdd=1.1)


@pytest.fixture(scope="module")
def stage():
    return StageDelayEngine(config=CFG, timestep=2e-12)


@pytest.fixture(scope="module")
def analytic():
    return AnalyticEngine(CFG)


@pytest.fixture(scope="module")
def full():
    return TransistorLevelEngine(config=CFG, timestep=2e-12)


class TestStageVsAnalytic:
    def test_fault_free_delta_t_same_scale(self, stage, analytic):
        d_stage = stage.delta_t(Tsv())
        d_analytic = analytic.delta_t(Tsv())
        assert d_analytic == pytest.approx(d_stage, rel=0.5)

    def test_open_signature_same_scale(self, stage, analytic):
        fault = ResistiveOpen(1000.0, 0.5)
        shift_stage = stage.delta_t(Tsv(fault=fault)) - stage.delta_t(Tsv())
        shift_analytic = (
            analytic.delta_t(Tsv(fault=fault)) - analytic.delta_t(Tsv())
        )
        assert shift_stage < 0 and shift_analytic < 0
        assert shift_analytic == pytest.approx(shift_stage, rel=0.6)

    def test_stop_thresholds_same_scale(self, stage, analytic):
        r_analytic = analytic.oscillation_stop_r_leak()

        def stage_oscillates(r):
            try:
                return math.isfinite(stage.delta_t(Tsv(fault=Leakage(r))))
            except RuntimeError:
                return False

        assert not stage_oscillates(r_analytic / 3.0)
        assert stage_oscillates(r_analytic * 3.0)


@pytest.mark.slow
class TestFullLoopVsStage:
    def test_periods_agree(self, full, stage):
        tsvs = [Tsv()] * 3
        for enabled in ([True] * 3, [False] * 3):
            t_full = full.period(tsvs, enabled)
            t_stage = stage.period(tsvs, enabled)
            assert t_stage == pytest.approx(t_full, rel=0.25)

    def test_delta_t_agrees(self, full, stage):
        d_full = full.delta_t(Tsv())
        d_stage = stage.delta_t(Tsv())
        assert d_stage == pytest.approx(d_full, rel=0.2)

    def test_open_ordering_agrees(self, full, stage):
        fault = ResistiveOpen(1500.0, 0.5)
        shift_full = full.delta_t(Tsv(fault=fault)) - full.delta_t(Tsv())
        shift_stage = stage.delta_t(Tsv(fault=fault)) - stage.delta_t(Tsv())
        assert shift_full < 0
        assert shift_stage == pytest.approx(shift_full, rel=0.5, abs=10e-12)

    def test_strong_leak_sticks_the_real_loop(self, full):
        with pytest.raises(RuntimeError):
            full.delta_t(Tsv(fault=Leakage(150.0)))


# ----------------------------------------------------------------------
# Registry-enumerated parity matrix
# ----------------------------------------------------------------------
#: Open fault every engine must see as a DeltaT *decrease*.
OPEN_FAULT = ResistiveOpen(1000.0, 0.5)
#: Leakage probe, as a multiple of the analytic oscillation-stop
#: resistance: just above the stop, inside the Fig. 8 sensitivity window
#: where every engine must see a DeltaT *increase*.
LEAK_STOP_FACTOR = 1.15
#: Engines cheap enough to run at every plan voltage; the transistor
#: loop is multi-second per point and stays at nominal supply.
FAST_ENGINES = frozenset({"analytic", "stagedelay"})

MATRIX_CELLS = (
    ("analytic", 1.1),
    ("analytic", 0.8),
    ("stagedelay", 1.1),
    ("stagedelay", 0.8),
    ("transistor", 1.1),
)


def _cell_params(cells):
    return [
        pytest.param(
            name, vdd, id=f"{name}@{vdd:.1f}V",
            marks=() if name in FAST_ENGINES else (pytest.mark.slow,),
        )
        for name, vdd in cells
    ]


_signature_cache = {}


def signature(name, vdd):
    """Memoized DeltaT signature of engine ``name`` at ``vdd``.

    Returns fault-free DeltaT plus the shifts under the shared open
    fault and the shared just-above-stop leakage probe.  Memoized at
    module scope because the transistor cells cost seconds each.
    """
    key = (name, vdd)
    if key not in _signature_cache:
        cfg = RingOscillatorConfig(num_segments=3, vdd=vdd)
        options = {} if name == "analytic" else {"timestep": 2e-12}
        engine = engine_registry.get(name, config=cfg, **options)
        stop = engine_registry.get(
            "analytic", config=cfg
        ).oscillation_stop_r_leak()
        ff = engine.delta_t(Tsv())
        leak = Leakage(LEAK_STOP_FACTOR * stop)
        _signature_cache[key] = {
            "ff": ff,
            "open_shift": engine.delta_t(Tsv(fault=OPEN_FAULT)) - ff,
            "leak_shift": engine.delta_t(Tsv(fault=leak)) - ff,
        }
    return _signature_cache[key]


class TestSignatureMatrix:
    def test_matrix_covers_every_registered_engine(self):
        """Adding a backend to the registry must extend this matrix."""
        assert set(engine_registry.names()) == {n for n, _ in MATRIX_CELLS}

    @pytest.mark.parametrize("name,vdd", _cell_params(MATRIX_CELLS))
    def test_fault_free_is_finite_positive(self, name, vdd):
        sig = signature(name, vdd)
        assert math.isfinite(sig["ff"]) and sig["ff"] > 0.0

    @pytest.mark.parametrize("name,vdd", _cell_params(MATRIX_CELLS))
    def test_resistive_open_decreases_delta_t(self, name, vdd):
        assert signature(name, vdd)["open_shift"] < 0.0

    @pytest.mark.parametrize("name,vdd", _cell_params(MATRIX_CELLS))
    def test_window_leakage_increases_delta_t(self, name, vdd):
        assert signature(name, vdd)["leak_shift"] > 0.0


def _pair_params():
    params = []
    for vdd in (1.1, 0.8):
        names = sorted({n for n, v in MATRIX_CELLS if v == vdd})
        for a, b in itertools.combinations(names, 2):
            slow = not {a, b} <= FAST_ENGINES
            params.append(pytest.param(
                a, b, vdd, id=f"{a}-vs-{b}@{vdd:.1f}V",
                marks=(pytest.mark.slow,) if slow else (),
            ))
    return params


class TestPairwiseSignAgreement:
    @pytest.mark.parametrize("a,b,vdd", _pair_params())
    def test_fault_shift_signs_agree(self, a, b, vdd):
        sig_a, sig_b = signature(a, vdd), signature(b, vdd)
        assert math.copysign(1, sig_a["open_shift"]) == math.copysign(
            1, sig_b["open_shift"]
        )
        assert math.copysign(1, sig_a["leak_shift"]) == math.copysign(
            1, sig_b["leak_shift"]
        )


# ----------------------------------------------------------------------
# Golden-fixture parity through the registry construction path
# ----------------------------------------------------------------------
class TestRegistryGoldenParity:
    """A registry-built stage engine reproduces the checked-in goldens.

    ``tests/spice/test_linalg_backends.py`` pins the directly
    constructed ``StageDelayEngine`` to ``delta_t_parity.json``; this
    class pins the ``registry.get`` / ``EngineSpec`` construction path
    to the same numbers, so the registry provably changes no numerics.
    """

    GOLDEN_TOL = 0.05e-12

    @pytest.fixture(scope="class")
    def golden(self):
        path = Path(__file__).parent.parent / "data" / "delta_t_parity.json"
        return json.loads(path.read_text())

    @pytest.fixture(scope="class")
    def engine(self, golden):
        spec = engine_registry.spec(
            "stagedelay", timestep=golden["engine"]["timestep_s"]
        )
        return spec.build(vdd=golden["engine"]["vdd"])

    def test_scalar_goldens_via_registry(self, golden, engine):
        ff = engine.delta_t(Tsv())
        assert ff == pytest.approx(golden["scalar"]["fault_free"],
                                   abs=self.GOLDEN_TOL)
        x = golden["x_open"]
        for r_open, want in zip(golden["r_open_ohm"],
                                golden["scalar"]["open"]):
            got = engine.delta_t(Tsv(fault=ResistiveOpen(r_open, x)))
            assert got == pytest.approx(want, abs=self.GOLDEN_TOL)

    def test_batched_goldens_via_registry(self, golden, engine):
        got = engine.delta_t_sweep_rl(golden["r_leak_ohm"])
        for value, want in zip(got, golden["batched"]["leak"]):
            assert value == pytest.approx(want, abs=self.GOLDEN_TOL)
