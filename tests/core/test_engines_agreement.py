"""Cross-engine agreement: the three engines must tell the same story.

The stage-delay engine is validated against the full transistor-level
loop (slow, so only the key points), and the analytic engine against the
stage engine (cheap, so more points).
"""

import math

import pytest

from repro.core.engines import (
    AnalyticEngine,
    StageDelayEngine,
    TransistorLevelEngine,
)
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv


CFG = RingOscillatorConfig(num_segments=3, vdd=1.1)


@pytest.fixture(scope="module")
def stage():
    return StageDelayEngine(config=CFG, timestep=2e-12)


@pytest.fixture(scope="module")
def analytic():
    return AnalyticEngine(CFG)


@pytest.fixture(scope="module")
def full():
    return TransistorLevelEngine(config=CFG, timestep=2e-12)


class TestStageVsAnalytic:
    def test_fault_free_delta_t_same_scale(self, stage, analytic):
        d_stage = stage.delta_t(Tsv())
        d_analytic = analytic.delta_t(Tsv())
        assert d_analytic == pytest.approx(d_stage, rel=0.5)

    def test_open_signature_same_scale(self, stage, analytic):
        fault = ResistiveOpen(1000.0, 0.5)
        shift_stage = stage.delta_t(Tsv(fault=fault)) - stage.delta_t(Tsv())
        shift_analytic = (
            analytic.delta_t(Tsv(fault=fault)) - analytic.delta_t(Tsv())
        )
        assert shift_stage < 0 and shift_analytic < 0
        assert shift_analytic == pytest.approx(shift_stage, rel=0.6)

    def test_stop_thresholds_same_scale(self, stage, analytic):
        r_analytic = analytic.oscillation_stop_r_leak()

        def stage_oscillates(r):
            try:
                return math.isfinite(stage.delta_t(Tsv(fault=Leakage(r))))
            except RuntimeError:
                return False

        assert not stage_oscillates(r_analytic / 3.0)
        assert stage_oscillates(r_analytic * 3.0)


@pytest.mark.slow
class TestFullLoopVsStage:
    def test_periods_agree(self, full, stage):
        tsvs = [Tsv()] * 3
        for enabled in ([True] * 3, [False] * 3):
            t_full = full.period(tsvs, enabled)
            t_stage = stage.period(tsvs, enabled)
            assert t_stage == pytest.approx(t_full, rel=0.25)

    def test_delta_t_agrees(self, full, stage):
        d_full = full.delta_t(Tsv())
        d_stage = stage.delta_t(Tsv())
        assert d_stage == pytest.approx(d_full, rel=0.2)

    def test_open_ordering_agrees(self, full, stage):
        fault = ResistiveOpen(1500.0, 0.5)
        shift_full = full.delta_t(Tsv(fault=fault)) - full.delta_t(Tsv())
        shift_stage = stage.delta_t(Tsv(fault=fault)) - stage.delta_t(Tsv())
        assert shift_full < 0
        assert shift_stage == pytest.approx(shift_full, rel=0.5, abs=10e-12)

    def test_strong_leak_sticks_the_real_loop(self, full):
        with pytest.raises(RuntimeError):
            full.delta_t(Tsv(fault=Leakage(150.0)))
