"""Unit tests for spread/overlap metrics (aliasing analysis)."""

import math

import numpy as np
import pytest

from repro.core.aliasing import (
    SpreadPair,
    detection_probability,
    histogram_overlap,
    mc_delta_t_spread,
    range_overlap_fraction,
    separation_gap,
)
from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation


class TestRangeOverlap:
    def test_disjoint_ranges(self):
        assert range_overlap_fraction(
            np.array([0.0, 1.0]), np.array([2.0, 3.0])
        ) == 0.0

    def test_identical_ranges(self):
        a = np.array([0.0, 1.0])
        assert range_overlap_fraction(a, a) == pytest.approx(1.0)

    def test_partial_overlap(self):
        a = np.array([0.0, 2.0])
        b = np.array([1.0, 3.0])
        assert range_overlap_fraction(a, b) == pytest.approx(1.0 / 3.0)

    def test_nan_samples_ignored(self):
        a = np.array([0.0, 1.0, np.nan])
        b = np.array([2.0, 3.0])
        assert range_overlap_fraction(a, b) == 0.0

    def test_empty_after_filtering(self):
        assert range_overlap_fraction(np.array([np.nan]),
                                      np.array([1.0])) == 0.0


class TestHistogramOverlap:
    def test_identical_distributions(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 5000)
        assert histogram_overlap(a, a) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        a = np.zeros(100)
        b = np.ones(100) * 10
        assert histogram_overlap(a, b) < 0.05

    def test_between_zero_and_one(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 500)
        b = rng.normal(1, 1, 500)
        assert 0.0 < histogram_overlap(a, b) < 1.0


class TestSeparationGap:
    def test_positive_for_disjoint(self):
        gap = separation_gap(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert gap == pytest.approx(1.0 / 3.0)

    def test_negative_for_overlapping(self):
        gap = separation_gap(np.array([0.0, 2.0]), np.array([1.0, 3.0]))
        assert gap == pytest.approx(-1.0 / 3.0)


class TestDetectionProbability:
    def test_all_outside_band(self):
        ff = np.array([0.0, 1.0])
        faulty = np.array([5.0, 6.0])
        assert detection_probability(faulty, ff) == 1.0

    def test_all_inside_band(self):
        ff = np.array([0.0, 10.0])
        faulty = np.array([5.0, 6.0])
        assert detection_probability(faulty, ff) == 0.0

    def test_stuck_always_detected(self):
        ff = np.array([0.0, 10.0])
        faulty = np.array([5.0, np.nan])
        assert detection_probability(faulty, ff) == 0.5

    def test_guard_reduces_detection(self):
        ff = np.array([0.0, 1.0])
        faulty = np.array([1.5])
        assert detection_probability(faulty, ff, guard=0.0) == 1.0
        assert detection_probability(faulty, ff, guard=1.0) == 0.0

    def test_requires_fault_free_samples(self):
        with pytest.raises(ValueError):
            detection_probability(np.array([1.0]), np.array([np.nan]))


class TestSpreadPair:
    def test_stats_fields(self):
        pair = SpreadPair(
            fault_free=np.array([1.0, 2.0]),
            faulty=np.array([3.0, np.nan]),
            vdd=1.1,
        )
        stats = pair.stats()
        assert stats["vdd"] == 1.1
        assert stats["stuck_fraction"] == 0.5
        assert stats["overlap"] == 0.0

    def test_distinguishable_flag(self):
        pair = SpreadPair(np.array([0.0, 1.0]), np.array([2.0, 3.0]), 1.1)
        assert pair.distinguishable
        pair2 = SpreadPair(np.array([0.0, 2.0]), np.array([1.0, 3.0]), 1.1)
        assert not pair2.distinguishable


class TestMcDeltaTSpread:
    def test_with_analytic_engine(self):
        engine = AnalyticEngine(RingOscillatorConfig(vdd=1.1))
        pair = mc_delta_t_spread(
            engine, Tsv(fault=ResistiveOpen(2000.0, 0.3)),
            ProcessVariation(), 50, seed=1,
        )
        assert len(pair.fault_free) == 50
        assert len(pair.faulty) == 50
        # A 2 kOhm shallow open at nominal voltage separates well.
        assert pair.detectability > 0.8
