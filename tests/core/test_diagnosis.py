"""Unit tests for within-group bisection diagnosis."""

import math

import numpy as np
import pytest

from repro.core.diagnosis import (
    DiagnosisResult,
    EngineGroupMeasurer,
    GroupDiagnosis,
    fault_free_band_per_tsv,
)
from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.session import ReferenceBand
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation


def synthetic_measure(contributions):
    """Subset measurement = sum of fixed member contributions."""
    def measure(indices):
        total = 0.0
        for i in indices:
            if not math.isfinite(contributions[i]):
                return math.nan
            total += contributions[i]
        return total
    return measure


BAND = ReferenceBand(0.9, 1.1)  # per-TSV fault-free contribution ~1.0


class TestBisection:
    def test_clean_group_single_measurement(self):
        measure = synthetic_measure([1.0] * 8)
        result = GroupDiagnosis(measure, BAND).run(range(8))
        assert result.suspects == []
        assert result.measurements == 1

    def test_single_fast_fault_isolated(self):
        contributions = [1.0] * 8
        contributions[5] = 0.6  # resistive open: faster
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(8))
        assert result.suspects == [5]

    def test_single_slow_fault_isolated(self):
        contributions = [1.0] * 8
        contributions[2] = 1.7  # leakage: slower
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(8))
        assert result.suspects == [2]

    def test_stuck_fault_isolated(self):
        contributions = [1.0] * 8
        contributions[7] = math.nan  # oscillation stop
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(8))
        assert result.suspects == [7]

    def test_two_faults_isolated(self):
        contributions = [1.0] * 8
        contributions[1] = 0.5
        contributions[6] = 2.0
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(8))
        assert result.suspects == [1, 6]

    def test_logarithmic_measurement_cost(self):
        """One fault in 16 TSVs: ~2*log2(16)+1 measurements, not 16."""
        contributions = [1.0] * 16
        contributions[11] = math.nan
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(16))
        assert result.suspects == [11]
        assert result.measurements <= 2 * 4 + 1

    def test_opposite_faults_can_cancel_at_group_level(self):
        """The paper's caveat (Sec. III-B): an open and a leakage in the
        same measured subset can cancel and stay undetected."""
        contributions = [1.0] * 4
        contributions[0] = 0.7   # open: -0.3
        contributions[3] = 1.3   # leak: +0.3
        result = GroupDiagnosis(synthetic_measure(contributions),
                                BAND).run(range(4))
        # The top-level measurement is 4.0 -> inside the group band.
        assert result.suspects == []
        assert result.measurements == 1

    def test_subset_log_records_everything(self):
        contributions = [1.0, 1.0, 0.5, 1.0]
        diag = GroupDiagnosis(synthetic_measure(contributions), BAND)
        result = diag.run(range(4))
        assert result.suspects == [2]
        subsets = [s for s, _, _ in result.subset_log]
        assert (0, 1, 2, 3) in subsets


class TestEngineGroupMeasurer:
    @pytest.fixture(scope="class")
    def engine(self):
        return AnalyticEngine(RingOscillatorConfig(vdd=1.1))

    @pytest.fixture(scope="class")
    def variation(self):
        return ProcessVariation()

    def test_clean_group_measures_inside_band(self, engine, variation):
        band = fault_free_band_per_tsv(engine, variation, 80, guard=5e-12)
        measurer = EngineGroupMeasurer(engine, [Tsv()] * 5, variation,
                                       seed=3)
        value = measurer(range(5))
        assert band.low * 5 <= value <= band.high * 5

    def test_isolates_real_open_fault(self, engine, variation):
        # A sigma-sized band (tighter than min/max) and a *shallow* hard
        # open (hides 90% of the TSV capacitance).  Group-level
        # detection of marginal opens is limited by the sqrt(k)
        # statistics -- the Fig. 10 trade-off -- so the group is kept
        # small and the fault strong.
        band = fault_free_band_per_tsv(engine, variation, 80,
                                       sigma_band=3.0)
        tsvs = [Tsv()] * 3
        tsvs[2] = Tsv(fault=ResistiveOpen(1e9, 0.1))
        measurer = EngineGroupMeasurer(engine, tsvs, variation, seed=4)
        result = GroupDiagnosis(measurer, band).run(range(3))
        assert 2 in result.suspects

    def test_marginal_fault_hides_in_large_group(self, engine, variation):
        """The flip side (Fig. 10): the same mid-depth open that a
        single-TSV measurement would flag stays inside a 5-member
        group's sqrt(k) band."""
        band = fault_free_band_per_tsv(engine, variation, 80,
                                       sigma_band=3.0)
        tsvs = [Tsv()] * 5
        tsvs[3] = Tsv(fault=ResistiveOpen(1e9, 0.5))
        measurer = EngineGroupMeasurer(engine, tsvs, variation, seed=4)
        result = GroupDiagnosis(measurer, band).run(range(5))
        assert result.suspects == []
        # ... while the member's own contribution is below the band.
        assert measurer([3]) < band.low

    def test_isolates_stuck_leak(self, engine, variation):
        band = fault_free_band_per_tsv(engine, variation, 80, guard=5e-12)
        tsvs = [Tsv()] * 5
        tsvs[0] = Tsv(fault=Leakage(100.0))
        measurer = EngineGroupMeasurer(engine, tsvs, variation, seed=5)
        result = GroupDiagnosis(measurer, band).run(range(5))
        assert result.suspects == [0]

    def test_works_without_variation(self, engine):
        tsvs = [Tsv(), Tsv(fault=Leakage(100.0))]
        measurer = EngineGroupMeasurer(engine, tsvs)
        assert math.isfinite(measurer([0]))
        assert math.isnan(measurer([0, 1]))
