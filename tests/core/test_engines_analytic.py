"""Unit tests for the analytic engine: every paper claim, in closed form."""

import math

import numpy as np
import pytest

from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.spice.montecarlo import ProcessVariation


@pytest.fixture(scope="module")
def engine():
    return AnalyticEngine(RingOscillatorConfig(vdd=1.1))


@pytest.fixture(scope="module")
def engine_low():
    return AnalyticEngine(RingOscillatorConfig(vdd=0.75))


class TestResistiveOpens:
    def test_open_reduces_delta_t(self, engine):
        """Fig. 6: resistive opens make the loop faster."""
        ff = engine.delta_t(Tsv())
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        assert faulty < ff

    def test_delta_t_monotonic_in_r_open(self, engine):
        values = [
            engine.delta_t(Tsv(fault=ResistiveOpen(r, 0.5)))
            for r in (10.0, 100.0, 1000.0, 3000.0, 10000.0)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_tiny_open_converges_to_fault_free(self, engine):
        ff = engine.delta_t(Tsv())
        tiny = engine.delta_t(Tsv(fault=ResistiveOpen(0.1, 0.5)))
        assert tiny == pytest.approx(ff, rel=0.01)

    def test_defect_near_top_more_detectable(self, engine):
        """Sec. IV-A: the closer to the driver, the larger the signature."""
        ff = engine.delta_t(Tsv())
        shallow = engine.delta_t(Tsv(fault=ResistiveOpen(2000.0, 0.2)))
        deep = engine.delta_t(Tsv(fault=ResistiveOpen(2000.0, 0.8)))
        assert abs(shallow - ff) > abs(deep - ff)

    def test_bottom_void_undetectable(self, engine):
        """A void at x = 1 leaves the observable capacitance unchanged."""
        ff = engine.delta_t(Tsv())
        bottom = engine.delta_t(Tsv(fault=ResistiveOpen(5000.0, 1.0)))
        assert bottom == pytest.approx(ff, rel=0.02)

    def test_relative_signature_grows_with_vdd(self, engine, engine_low):
        """Fig. 7's driver: opens separate better at high supply."""
        def relative_shift(eng):
            ff = eng.delta_t(Tsv())
            faulty = eng.delta_t(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
            return abs(faulty - ff) / ff

        assert relative_shift(engine) > relative_shift(engine_low)

    def test_full_open_bounded_by_top_capacitance(self, engine):
        """Even an infinite open only removes the bottom (1-x)C."""
        ff = engine.delta_t(Tsv())
        full = engine.delta_t(Tsv(fault=ResistiveOpen(math.inf, 0.5)))
        huge = engine.delta_t(Tsv(fault=ResistiveOpen(1e9, 0.5)))
        assert full == pytest.approx(huge, rel=0.05)
        assert full < ff


class TestLeakage:
    def test_oscillation_stops_below_threshold(self, engine):
        r_stop = engine.oscillation_stop_r_leak()
        strong = engine.delta_t(Tsv(fault=Leakage(r_stop * 0.5)))
        assert math.isnan(strong)

    def test_oscillates_above_threshold(self, engine):
        r_stop = engine.oscillation_stop_r_leak()
        weak = engine.delta_t(Tsv(fault=Leakage(r_stop * 3.0)))
        assert math.isfinite(weak)

    def test_stop_threshold_drops_with_vdd(self):
        """Fig. 8: higher supply tolerates stronger leakage."""
        thresholds = [
            AnalyticEngine(
                RingOscillatorConfig(vdd=v)
            ).oscillation_stop_r_leak()
            for v in (0.75, 0.8, 0.95, 1.1)
        ]
        assert all(b < a for a, b in zip(thresholds, thresholds[1:]))

    def test_delta_t_diverges_near_threshold(self, engine):
        """Fig. 8: extreme sensitivity just above the stop threshold."""
        r_stop = engine.oscillation_stop_r_leak()
        ff = engine.delta_t(Tsv())
        near = engine.delta_t(Tsv(fault=Leakage(r_stop * 1.05)))
        far = engine.delta_t(Tsv(fault=Leakage(r_stop * 10.0)))
        assert near - ff > 10 * abs(far - ff)
        assert near > ff

    def test_weak_leakage_detectable_at_low_voltage_only(self, engine, engine_low):
        """The multi-voltage argument: a leakage between the two stop
        thresholds sticks the oscillator at 0.75 V but barely moves
        DeltaT at 1.1 V."""
        r_mid = math.sqrt(
            engine.oscillation_stop_r_leak()
            * engine_low.oscillation_stop_r_leak()
        )
        at_low = engine_low.delta_t(Tsv(fault=Leakage(r_mid)))
        assert math.isnan(at_low)
        at_high = engine.delta_t(Tsv(fault=Leakage(r_mid)))
        assert math.isfinite(at_high)

    def test_strong_leak_at_high_vdd_has_positive_signature(self, engine):
        ff = engine.delta_t(Tsv())
        r_stop = engine.oscillation_stop_r_leak()
        strong = engine.delta_t(Tsv(fault=Leakage(r_stop * 1.2)))
        assert strong > ff


class TestPeriods:
    def test_enabled_segments_slow_the_loop(self, engine):
        tsvs = [Tsv()] * 5
        t_on = engine.period(tsvs, [True] * 5)
        t_off = engine.period(tsvs, [False] * 5)
        assert t_on > t_off

    def test_period_additive_in_enabled_count(self, engine):
        tsvs = [Tsv()] * 5
        periods = [
            engine.period(tsvs, [True] * k + [False] * (5 - k))
            for k in range(6)
        ]
        increments = np.diff(periods)
        assert np.allclose(increments, increments[0], rtol=1e-6)

    def test_stuck_stage_gives_infinite_period(self, engine):
        r_stop = engine.oscillation_stop_r_leak()
        tsvs = [Tsv(fault=Leakage(r_stop * 0.5))] + [Tsv()] * 4
        assert math.isinf(engine.period(tsvs, [True] + [False] * 4))

    def test_bypassed_fault_does_not_affect_period(self, engine):
        healthy = engine.period([Tsv()] * 5, [False] * 5)
        with_fault = engine.period(
            [Tsv(fault=Leakage(100.0))] + [Tsv()] * 4, [False] * 5
        )
        assert with_fault == pytest.approx(healthy)

    def test_period_scale_is_nanoseconds(self, engine):
        t = engine.period([Tsv()] * 5, [True] * 5)
        assert 0.2e-9 < t < 20e-9

    def test_mismatched_lengths_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.period([Tsv()] * 4, [True] * 5)


class TestDeltaTScaling:
    def test_delta_t_scales_with_m(self, engine):
        one = engine.delta_t(Tsv(), m=1)
        three = engine.delta_t(Tsv(), m=3)
        assert three == pytest.approx(3 * one, rel=1e-6)

    def test_fault_free_delta_t_positive(self, engine):
        """The TSV path is slower than the bypass path (Fig. 6 at R=0)."""
        assert engine.delta_t(Tsv()) > 0


class TestMonteCarlo:
    def test_spread_reflects_variation(self, engine, variation):
        samples = engine.delta_t_mc(Tsv(), variation, 100, seed=0)
        assert np.std(samples) > 0
        assert np.all(np.isfinite(samples))

    def test_zero_variation_zero_spread(self, engine):
        pv = ProcessVariation(sigma_vth=0.0, sigma_leff_rel=0.0)
        samples = engine.delta_t_mc(Tsv(), pv, 10, seed=0)
        assert np.std(samples) == pytest.approx(0.0, abs=1e-18)

    def test_seeded_reproducibility(self, engine, variation):
        a = engine.delta_t_mc(Tsv(), variation, 20, seed=5)
        b = engine.delta_t_mc(Tsv(), variation, 20, seed=5)
        assert np.array_equal(a, b)

    def test_relative_spread_grows_at_low_voltage(self, engine, engine_low,
                                                  variation):
        """Near-threshold operation amplifies Vth mismatch (Figs. 7/9)."""
        hi = engine.delta_t_mc(Tsv(), variation, 100, seed=1)
        lo = engine_low.delta_t_mc(Tsv(), variation, 100, seed=1)
        assert np.std(lo) / np.mean(lo) > np.std(hi) / np.mean(hi)

    def test_near_threshold_leak_sticks_some_samples(self, engine_low,
                                                     variation):
        r_stop = engine_low.oscillation_stop_r_leak()
        samples = engine_low.delta_t_mc(
            Tsv(fault=Leakage(r_stop * 1.02)), variation, 100, seed=2
        )
        assert np.isnan(samples).any()

    def test_mc_spread_scales_with_variation(self, engine):
        small = engine.delta_t_mc(Tsv(), ProcessVariation().scaled(0.5),
                                  100, seed=3)
        large = engine.delta_t_mc(Tsv(), ProcessVariation(), 100, seed=3)
        assert np.std(large) > 1.5 * np.std(small)
