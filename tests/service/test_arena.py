"""Arena allocator: segment lifecycle, leak audits, payload shipping.

The arena is the resource-safety backbone of the process transport:
every shared-memory segment must be accounted for (created, attached,
released, or loudly reported leaked at drain), and payloads shipped
through :func:`~repro.service.arena.dump`/`load` must round-trip
bit-identically -- in-process and across a real worker process.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.service.arena import (
    SEGMENT_PREFIX,
    Arena,
    ArenaHandle,
    ArenaLeakError,
    BufferSpec,
    aligned,
    dump,
    load,
    ndarray_at,
)
from repro.spice.batch import BatchParameters
from repro.telemetry import use_telemetry


def shm_segments() -> list:
    """This machine's live ``/dev/shm`` entries with our prefix."""
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


class TestAlignment:
    def test_rounds_up_to_cache_lines(self):
        assert aligned(0) == 0
        assert aligned(1) == 64
        assert aligned(64) == 64
        assert aligned(65) == 128


class TestSegmentLifecycle:
    def test_create_buffer_release(self):
        arena = Arena(label="t")
        handle = arena.create(128)
        assert handle.name.startswith(SEGMENT_PREFIX)
        assert len(arena) == 1
        buf = arena.buffer(handle)
        buf[:4] = b"\x01\x02\x03\x04"
        assert bytes(buf[:4]) == b"\x01\x02\x03\x04"
        del buf
        arena.release(handle)
        assert len(arena) == 0
        assert not shm_segments()

    def test_zero_byte_payloads_are_legal(self):
        arena = Arena()
        handle = arena.create(0)
        arena.release(handle)

    def test_release_of_foreign_segment_raises(self):
        arena = Arena()
        with pytest.raises(KeyError):
            arena.release(ArenaHandle(name="repro-arena-nope", nbytes=1))

    def test_attach_is_refcounted(self):
        creator = Arena(label="creator")
        attacher = Arena(label="attacher")
        handle = creator.create(64)
        view_a = attacher.attach(handle)
        view_b = attacher.attach(handle)
        assert len(attacher) == 1
        view_a[:1] = b"\x07"
        assert bytes(view_b[:1]) == b"\x07"
        del view_a, view_b
        attacher.detach(handle)
        assert len(attacher) == 1  # one reference still out
        attacher.detach(handle)
        assert len(attacher) == 0
        creator.release(handle)

    def test_detach_without_attach_raises(self):
        arena = Arena()
        with pytest.raises(KeyError):
            arena.detach(ArenaHandle(name="repro-arena-nope", nbytes=1))

    def test_writes_are_visible_across_arenas(self):
        creator = Arena()
        attacher = Arena()
        handle = creator.create(64)
        view = attacher.attach(handle)
        ndarray_at(view, BufferSpec(0, 32, "float64", (4,)))[:] = [
            1.0, 2.0, 3.0, 4.0,
        ]
        del view
        attacher.detach(handle)
        buf = creator.buffer(handle)
        got = np.array(ndarray_at(buf, BufferSpec(0, 32, "float64", (4,))))
        del buf
        creator.release(handle)
        assert got.tolist() == [1.0, 2.0, 3.0, 4.0]


class TestDrainAudit:
    def test_clean_drain_is_a_noop(self):
        arena = Arena()
        handle = arena.create(64)
        arena.release(handle)
        arena.drain()  # nothing held: no error

    def test_leaked_segment_is_force_released_and_reported(self):
        with use_telemetry() as telemetry:
            arena = Arena(label="leaky")
            handle = arena.create(64)
            with pytest.raises(ArenaLeakError) as excinfo:
                arena.drain()
        assert handle.name in str(excinfo.value)
        assert len(arena) == 0
        assert not shm_segments()  # force-released, not kept leaked
        assert telemetry.snapshot()["counters"]["arena.leaked"] == 1

    def test_lifecycle_telemetry_balances(self):
        with use_telemetry() as telemetry:
            creator = Arena()
            attacher = Arena()
            first = creator.create(64)
            second = creator.create(64)
            attacher.attach(first)
            attacher.detach(first)
            creator.release(first)
            creator.release(second)
        counters = telemetry.snapshot()["counters"]
        assert counters["arena.created"] == 2
        assert counters["arena.unlinked"] == 2
        assert counters["arena.attached"] == 1
        assert "arena.leaked" not in counters


class TestPayloadShipping:
    def payload(self):
        return {
            "arrays": [np.arange(100, dtype=np.float64),
                       np.ones((3, 5), dtype=np.float32)],
            "meta": ("tag", 7),
        }

    def test_dump_load_copy_roundtrip(self):
        arena = Arena()
        shipped = dump(arena, self.payload())
        got = load(arena, shipped, copy=True)
        arena.release(shipped.handle)  # copy owes nothing to the segment
        want = self.payload()
        assert np.array_equal(got["arrays"][0], want["arrays"][0])
        assert got["arrays"][1].dtype == np.float32
        assert got["meta"] == want["meta"]
        assert len(arena) == 0

    def test_dump_load_zero_copy_views(self):
        arena = Arena()
        shipped = dump(arena, self.payload())
        got = load(arena, shipped, copy=False)
        assert np.array_equal(got["arrays"][0], self.payload()["arrays"][0])
        # Zero-copy: the caller must drop the views before detach.
        del got
        arena.detach(shipped.handle)
        arena.release(shipped.handle)
        assert len(arena) == 0

    def test_body_and_buffers_are_aligned(self):
        arena = Arena()
        shipped = dump(arena, self.payload())
        assert shipped.body.offset == 0
        for spec in shipped.buffers:
            assert spec.offset % 64 == 0
        arena.release(shipped.handle)

    def test_payload_descriptor_is_small_and_picklable(self):
        arena = Arena()
        shipped = dump(arena, self.payload())
        wire = pickle.dumps(shipped)
        # The point of the arena: the pipe carries a descriptor, not
        # the ~1 KB of array content.
        assert len(wire) < 600
        assert pickle.loads(wire) == shipped
        arena.release(shipped.handle)


class TestBatchParametersTransport:
    def params(self):
        rng = np.random.default_rng(3)
        return BatchParameters(
            num_corners=8,
            mosfet_dvth=rng.normal(0.0, 0.02, (8, 6)),
            mosfet_dl_rel=rng.normal(0.0, 0.01, (8, 6)),
            resistor_values={"rtsv": rng.uniform(50.0, 90.0, (8, 1))},
        )

    def assert_equal(self, got, want):
        assert got.num_corners == want.num_corners
        assert np.array_equal(got.mosfet_dvth, want.mosfet_dvth)
        assert np.array_equal(got.mosfet_dl_rel, want.mosfet_dl_rel)
        assert sorted(got.resistor_values) == sorted(want.resistor_values)
        for name, values in want.resistor_values.items():
            assert np.array_equal(got.resistor_values[name], values)

    def test_roundtrip_zero_copy(self):
        arena = Arena()
        want = self.params()
        shipped = want.to_arena(arena)
        got = BatchParameters.from_arena(arena, shipped, copy=False)
        self.assert_equal(got, want)
        del got
        arena.detach(shipped.handle)
        arena.release(shipped.handle)
        assert len(arena) == 0

    def test_roundtrip_copy_outlives_segment(self):
        arena = Arena()
        want = self.params()
        shipped = want.to_arena(arena)
        got = BatchParameters.from_arena(arena, shipped, copy=True)
        arena.release(shipped.handle)
        self.assert_equal(got, want)  # segment gone, copy intact

    def test_from_arena_rejects_wrong_payload_type(self):
        arena = Arena()
        shipped = dump(arena, ["not", "parameters"])
        with pytest.raises(TypeError):
            BatchParameters.from_arena(arena, shipped, copy=True)
        arena.release(shipped.handle)
