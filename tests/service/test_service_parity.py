"""Numerical parity: the service path changes scheduling, not numbers.

Three pins, in increasing strictness:

* service answers reproduce the checked-in ``delta_t_parity.json``
  goldens through the solo (scalar) path;
* micro-batched Monte-Carlo answers are *bit-identical* to serial
  ``engine.measure`` calls -- while provably coalescing (telemetry
  proves requests shared solves);
* the service reproduces :meth:`ScreeningFlow._measure` bit-for-bit,
  so an online deployment screens exactly like the offline flow.
"""

import asyncio
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.engines import registry as engine_registry
from repro.core.session import ReferenceBand
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.service import ResponseStatus, ScreenRequest, ScreeningService
from repro.spice.montecarlo import ProcessVariation
from repro.telemetry import use_telemetry
from repro.workloads import ScreeningFlow

#: Coarse-timestep spec for the MC parity cases (fast; parity is exact
#: at any timestep because both sides share it).
COARSE = engine_registry.spec("stagedelay", timestep=40e-12)


def run(coro):
    return asyncio.run(coro)


class TestGoldenParity:
    """Service scalar answers reproduce ``delta_t_parity.json``."""

    GOLDEN_TOL = 0.05e-12

    @pytest.fixture(scope="class")
    def golden(self):
        path = Path(__file__).parent.parent / "data" / "delta_t_parity.json"
        return json.loads(path.read_text())

    @pytest.fixture(scope="class")
    def engine(self, golden):
        spec = engine_registry.spec(
            "stagedelay", timestep=golden["engine"]["timestep_s"]
        )
        return spec.build(vdd=golden["engine"]["vdd"])

    def test_scalar_goldens_through_service(self, golden, engine):
        x = golden["x_open"]
        tsvs = [Tsv()] + [
            Tsv(fault=ResistiveOpen(r_open, x))
            for r_open in golden["r_open_ohm"]
        ]
        want = [golden["scalar"]["fault_free"]] + list(
            golden["scalar"]["open"]
        )

        async def scenario():
            requests = [
                ScreenRequest(tsv=tsv, num_samples=None) for tsv in tsvs
            ]
            async with ScreeningService(engine=engine) as service:
                return await service.submit_many(requests)

        responses = run(scenario())
        for response, expected in zip(responses, want):
            assert response.status is ResponseStatus.OK
            # Scalar requests take the solo path: no coalescing possible.
            assert response.batch_size == 1
            assert response.delta_t == pytest.approx(
                expected, abs=self.GOLDEN_TOL
            )


class TestBatchedBitIdentity:
    """Coalesced service answers == serial measure answers, bit for bit."""

    @pytest.fixture(scope="class")
    def engine(self):
        return COARSE.build()

    def requests(self):
        variation = ProcessVariation()
        tsvs = [Tsv(), Tsv(fault=Leakage(5e4))]
        return [
            ScreenRequest(
                tsv=tsv, m=1, seed=seed, variation=variation, num_samples=1
            )
            for tsv in tsvs for seed in range(4)
        ]

    def test_service_matches_serial_measure_bit_identical(self, engine):
        serial = [
            engine.measure(request.to_measurement())
            for request in self.requests()
        ]

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.02, max_batch_size=16
            ) as service:
                return await service.submit_many(self.requests())

        with use_telemetry() as telemetry:
            responses = run(scenario())
            snapshot = telemetry.snapshot()

        assert all(r.status is ResponseStatus.OK for r in responses)
        for response, expected in zip(responses, serial):
            assert response.delta_t == expected.delta_t  # bit-identical
            assert response.vdd == expected.vdd
            np.testing.assert_array_equal(
                response.samples, expected.samples
            )
        # ... and the equality must have been earned: requests shared
        # solves rather than degenerating into singletons.
        assert snapshot["counters"]["service.coalesced"] >= 8
        assert max(r.batch_size for r in responses) > 1
        occupancy = snapshot["histograms"]["service.batch_occupancy"]
        assert occupancy["max"] > 1

    def test_per_request_vdd_respected_in_batches(self, engine):
        variation = ProcessVariation()
        requests = [
            ScreenRequest(
                tsv=Tsv(), vdd=vdd, seed=seed, variation=variation,
                num_samples=1,
            )
            for vdd in (None, 0.8) for seed in range(2)
        ]
        serial = [
            engine.measure(request.to_measurement()) for request in requests
        ]

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.02
            ) as service:
                return await service.submit_many(requests)

        responses = run(scenario())
        for response, expected in zip(responses, serial):
            assert response.status is ResponseStatus.OK
            assert response.vdd == expected.vdd
            assert response.delta_t == expected.delta_t
        # The two supplies must not have been mixed into one solve.
        assert responses[0].vdd != responses[2].vdd


class TestFlowParity:
    """The service screens exactly like the serial ScreeningFlow."""

    def test_measurement_path_matches_flow(self):
        vdd = 1.0
        variation = ProcessVariation()
        # Precomputed (dummy) bands skip characterization: this test is
        # about the measurement path, not the acceptance thresholds.
        flow = ScreeningFlow(
            COARSE,
            voltages=[vdd],
            variation=variation,
            bands={vdd: ReferenceBand(0.0, 1.0)},
            preflight=False,
        )
        tsvs = [Tsv(), Tsv(fault=ResistiveOpen(2e3, 0.4))]
        flow_values = [
            flow._measure(tsv, vdd, seed=seed)
            for tsv in tsvs for seed in range(3)
        ]

        async def scenario():
            requests = [
                ScreenRequest(
                    tsv=tsv, vdd=vdd, seed=seed, variation=variation,
                    num_samples=1,
                )
                for tsv in tsvs for seed in range(3)
            ]
            async with ScreeningService(
                engine=COARSE, batch_window_s=0.02
            ) as service:
                return await service.submit_many(requests)

        responses = run(scenario())
        assert [r.delta_t for r in responses] == flow_values


class TestCoalescePolicies:
    """The three grouping policies trade batch width for key strictness.

    ``"family"`` (default) must widen coalescing across circuit-content
    variants without changing any number; ``"exact"`` restores the
    pre-family grouping; ``"none"`` disables coalescing entirely.
    """

    def requests(self):
        variation = ProcessVariation()
        tsvs = [Tsv(), Tsv(fault=Leakage(5e4)), Tsv(fault=ResistiveOpen(2e3))]
        return [
            ScreenRequest(
                tsv=tsv, seed=seed, variation=variation, num_samples=1
            )
            for tsv in tsvs for seed in range(2)
        ]

    def run_policy(self, engine, coalesce):
        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.02, coalesce=coalesce
            ) as service:
                return await service.submit_many(self.requests())

        with use_telemetry() as telemetry:
            responses = run(scenario())
            snapshot = telemetry.snapshot()
        assert all(r.status is ResponseStatus.OK for r in responses)
        return responses, snapshot

    def test_family_policy_packs_across_faults_bit_identically(self):
        engine = COARSE.build()
        serial = [
            engine.measure(request.to_measurement())
            for request in self.requests()
        ]
        responses, snapshot = self.run_policy(engine, "family")
        for response, expected in zip(responses, serial):
            assert response.delta_t == expected.delta_t
            np.testing.assert_array_equal(response.samples, expected.samples)
        # One family batch spanning all three exact groups.
        assert snapshot["histograms"]["service.family_span"]["max"] == 3
        assert snapshot["histograms"]["service.batch_occupancy"]["max"] == 6
        assert snapshot["counters"]["ragged.packs"] >= 1

    def test_exact_policy_never_spans_exact_groups(self):
        responses, snapshot = self.run_policy(COARSE.build(), "exact")
        assert snapshot["histograms"]["service.family_span"]["max"] == 1
        # Same-fault requests still coalesce (occupancy 2 per group).
        assert snapshot["histograms"]["service.batch_occupancy"]["max"] == 2
        assert snapshot["counters"].get("ragged.packs", 0) == 0

    def test_none_policy_solves_every_request_alone(self):
        responses, snapshot = self.run_policy(COARSE.build(), "none")
        assert all(r.batch_size == 1 for r in responses)
        assert snapshot["histograms"]["service.batch_occupancy"]["max"] == 1

    def test_policies_agree_numerically(self):
        engine = COARSE.build()
        family, _ = self.run_policy(engine, "family")
        exact, _ = self.run_policy(engine, "exact")
        none, _ = self.run_policy(engine, "none")
        for a, b, c in zip(family, exact, none):
            assert a.delta_t == b.delta_t == c.delta_t

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="coalesce policy"):
            ScreeningService(engine=COARSE, coalesce="fuzzy")
