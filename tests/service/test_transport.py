"""Worker transports: thread/process parity, failure semantics, leaks.

The process transport must be *observationally identical* to the thread
transport -- bit-identical measurements, the same retry-once and
deadline semantics -- while keeping every shared-memory segment
accounted for.  Engines used here are registered through a fixture (and
unregistered afterwards) so specs resolve in forked workers without
perturbing the registry-content assertions elsewhere in the suite.
"""

import asyncio
import glob
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
import pytest

from repro.core.engines import registry
from repro.core.engines.base import (
    Engine,
    EngineCapabilities,
    MeasurementRequest,
    MeasurementResult,
)
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Tsv
from repro.service import (
    ResponseStatus,
    ScreenRequest,
    ScreeningService,
    ServiceConfig,
)
from repro.service.arena import SEGMENT_PREFIX
from repro.telemetry import use_telemetry


@dataclass
class NapEngine(Engine):
    """Answers with a fixed value after a fixed delay (registered)."""

    engine_name = "testnap"
    capabilities = EngineCapabilities(batched_requests=True)

    config: RingOscillatorConfig = field(
        default_factory=RingOscillatorConfig
    )
    delay_s: float = 0.0
    value: float = 1e-10

    def period(self, tsvs, enabled, sample=None):
        return self.value

    def delta_t(self, tsv, m=1, variation=None, seed=0):
        return self.value

    def batch_key(self, request: MeasurementRequest) -> Optional[str]:
        return self.engine_name

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        return self.measure_batch([request])[0]

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        if self.delay_s:
            time.sleep(self.delay_s)
        return [
            MeasurementResult(
                delta_t=self.value, engine=self.engine_name,
                vdd=self.config.vdd, m=r.m, seed=r.seed,
            )
            for r in requests
        ]


@dataclass
class SplitterEngine(NapEngine):
    """Raises on coalesced (multi-request) solves; singletons work."""

    engine_name = "testsplit"

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        if len(requests) > 1:
            raise RuntimeError("coalesced solve diverged")
        return super().measure_batch(requests)


@dataclass
class UnregisteredEngine(NapEngine):
    """Never registered: not spec-resolvable across processes."""

    engine_name = "testunregistered"


@pytest.fixture
def test_engines():
    """Register the stub engines for the test, then scrub the registry."""
    for cls in (NapEngine, SplitterEngine):
        registry.register(cls.engine_name)(cls)
    try:
        yield
    finally:
        for cls in (NapEngine, SplitterEngine):
            registry._REGISTRY.pop(cls.engine_name, None)


def shm_segments() -> List[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def request(**kwargs) -> ScreenRequest:
    kwargs.setdefault("tsv", Tsv())
    return ScreenRequest(**kwargs)


def run_service(config: ServiceConfig, requests: List[ScreenRequest]):
    async def scenario():
        async with ScreeningService(config) as service:
            return await service.submit_many(requests)

    return asyncio.run(scenario())


class TestThreadProcessParity:
    def test_bit_identical_responses_at_64_concurrent(self):
        """64 concurrent Monte-Carlo requests: same bits either way."""
        requests = [
            request(
                tsv=Tsv(), m=1 + (i % 3), seed=i, vdd=0.7 + 0.1 * (i % 4),
                num_samples=8,
            )
            for i in range(64)
        ]
        by_transport = {}
        for transport in ("thread", "process"):
            responses = run_service(
                ServiceConfig(
                    engine="analytic", transport=transport, num_workers=2,
                    max_queue_depth=64,
                ),
                requests,
            )
            assert all(r.status is ResponseStatus.OK for r in responses)
            by_transport[transport] = responses
        for t, p in zip(by_transport["thread"], by_transport["process"]):
            assert t.delta_t == p.delta_t
            assert t.vdd == p.vdd
            assert t.engine == p.engine
            assert np.array_equal(t.samples, p.samples)
        assert not shm_segments()

    def test_transport_stage_is_itemized(self):
        requests = [request(seed=i, num_samples=4) for i in range(8)]
        thread = run_service(
            ServiceConfig(engine="analytic", transport="thread"), requests
        )
        process = run_service(
            ServiceConfig(engine="analytic", transport="process"), requests
        )
        assert all(r.latency.transport_s == 0.0 for r in thread)
        assert any(r.latency.transport_s > 0.0 for r in process)


class TestProcessFailureSemantics:
    def test_deadline_expires_mid_process_solve(self, test_engines):
        """A 50 ms deadline against a 500 ms worker-process solve."""

        async def scenario():
            async with ScreeningService(
                engine=NapEngine(delay_s=0.5), transport="process",
                batch_window_s=0.0, num_workers=1,
            ) as service:
                start = time.monotonic()
                response = await service.submit(request(deadline_s=0.05))
                waited = time.monotonic() - start
            return response, waited

        response, waited = asyncio.run(scenario())
        assert response.status is ResponseStatus.EXPIRED
        # Answered at the deadline, not after the 0.5 s solve; the
        # late worker-process result is discarded on arrival.
        assert waited < 0.4
        assert not shm_segments()

    def test_decomposition_retry_across_processes(self, test_engines):
        with use_telemetry() as telemetry:
            responses = run_service(
                ServiceConfig(
                    engine=SplitterEngine(), transport="process",
                    batch_window_s=0.05, num_workers=1,
                ),
                [request(seed=i) for i in range(4)],
            )
        assert all(r.status is ResponseStatus.OK for r in responses)
        assert all(r.attempts == 2 for r in responses)
        assert all(r.batch_size == 1 for r in responses)
        counters = telemetry.snapshot()["counters"]
        assert counters["service.batch_retries"] == 1
        assert not shm_segments()

    def test_unresolvable_engine_is_rejected_structurally(self):
        responses = run_service(
            ServiceConfig(
                engine=UnregisteredEngine(), transport="process",
            ),
            [request(seed=0)],
        )
        assert responses[0].status is ResponseStatus.REJECTED
        assert "spec-resolvable" in responses[0].reason


class TestArenaHammer:
    def test_four_process_sweep_leaks_nothing(self):
        """4 worker processes, 48 Monte-Carlo solves, zero leftovers."""
        with use_telemetry() as telemetry:
            responses = run_service(
                ServiceConfig(
                    engine="analytic", transport="process", num_workers=4,
                    max_queue_depth=48, batch_window_s=0.002,
                ),
                [
                    request(seed=i, num_samples=16, vdd=0.7 + 0.1 * (i % 3))
                    for i in range(48)
                ],
            )
        assert all(r.status is ResponseStatus.OK for r in responses)
        counters = telemetry.snapshot()["counters"]
        assert counters["arena.created"] == counters["arena.unlinked"]
        assert "arena.leaked" not in counters
        assert not shm_segments()


class TestTransportConfig:
    def test_thread_remains_the_default(self):
        assert ServiceConfig().transport == "thread"

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ScreeningService(transport="carrier-pigeon")

    def test_auto_resolves_by_cores_and_engine(self):
        async def scenario(config):
            async with ScreeningService(config) as service:
                return service.transport

        expected = "process" if (os.cpu_count() or 1) > 1 else "thread"
        assert asyncio.run(
            scenario(ServiceConfig(engine="analytic", transport="auto"))
        ) == expected
        # An engine that cannot survive the process boundary pins auto
        # to the thread transport no matter the core count.
        assert asyncio.run(
            scenario(ServiceConfig(
                engine=UnregisteredEngine(), transport="auto",
            ))
        ) == "thread"
