"""Overload behavior: saturation, deadlines, shutdown, retry-once.

Under overload the service must *degrade structurally*: every request
still gets exactly one typed response -- REJECTED at a full queue,
EXPIRED at a blown deadline (promptly, even mid-solve), FAILED after
the retry budget -- and graceful shutdown answers everything already
admitted.  Stub engines with controllable delay/failure keep these
tests independent of solver speed.
"""

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import pytest

from repro.core.engines.base import (
    Engine,
    EngineCapabilities,
    MeasurementRequest,
    MeasurementResult,
)
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Tsv
from repro.service import (
    AdmissionPolicy,
    ResponseStatus,
    ScreenRequest,
    ScreeningService,
)
from repro.telemetry import use_telemetry


@dataclass
class SleepyEngine(Engine):
    """Answers every request with a fixed value after a fixed delay."""

    engine_name = "sleepy"
    capabilities = EngineCapabilities(batched_requests=True)

    config: RingOscillatorConfig = field(
        default_factory=RingOscillatorConfig
    )
    delay_s: float = 0.0
    value: float = 1e-10

    def period(self, tsvs, enabled, sample=None):
        return self.value

    def delta_t(self, tsv, m=1, variation=None, seed=0):
        return self.value

    def batch_key(self, request: MeasurementRequest) -> Optional[str]:
        return "sleepy"

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        if self.delay_s:
            time.sleep(self.delay_s)
        return MeasurementResult(
            delta_t=self.value, engine=self.engine_name,
            vdd=self.config.vdd, m=request.m, seed=request.seed,
        )

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        if self.delay_s:
            time.sleep(self.delay_s)
        return [
            MeasurementResult(
                delta_t=self.value, engine=self.engine_name,
                vdd=self.config.vdd, m=r.m, seed=r.seed,
            )
            for r in requests
        ]


@dataclass
class FlakyEngine(SleepyEngine):
    """Raises on every coalesced (multi-request) solve; singletons work."""

    engine_name = "flaky"

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        if len(requests) > 1:
            raise RuntimeError("coalesced solve diverged")
        return super().measure_batch(requests)


@dataclass
class BrokenEngine(SleepyEngine):
    """Raises on every solve, coalesced or not."""

    engine_name = "broken"

    def measure_batch(self, requests):
        raise ValueError("no convergence at any composition")


def request(**kwargs) -> ScreenRequest:
    kwargs.setdefault("tsv", Tsv())
    return ScreenRequest(**kwargs)


class TestAdmissionOverload:
    def test_shed_policy_rejects_structurally(self):
        """A saturated queue sheds with typed responses, not exceptions."""
        engine = SleepyEngine(delay_s=0.05)

        async def scenario():
            with use_telemetry() as telemetry:
                async with ScreeningService(
                    engine=engine, admission="shed", max_queue_depth=2,
                    batch_window_s=0.2, max_batch_size=2, num_workers=1,
                ) as service:
                    # Burst far past depth without yielding: whatever
                    # does not fit must shed at the door.
                    futures = [
                        await service.enqueue(request(seed=i))
                        for i in range(12)
                    ]
                    responses = await asyncio.gather(*futures)
                return responses, telemetry.snapshot()

        responses, snapshot = asyncio.run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count(ResponseStatus.REJECTED) >= 1
        assert statuses.count(ResponseStatus.OK) >= 2
        assert len(responses) == 12  # every request answered
        for r in responses:
            if r.status is ResponseStatus.REJECTED:
                assert "admission queue full" in r.reason
                assert math.isnan(r.delta_t)
        counters = snapshot["counters"]
        assert counters["service.rejected"] == statuses.count(
            ResponseStatus.REJECTED
        )

    def test_block_policy_admits_everything(self):
        """Backpressure: a blocking producer eventually gets all OKs."""
        engine = SleepyEngine(delay_s=0.001)

        async def scenario():
            async with ScreeningService(
                engine=engine, admission=AdmissionPolicy.BLOCK,
                max_queue_depth=2, batch_window_s=0.0, num_workers=1,
            ) as service:
                return await service.submit_many(
                    [request(seed=i) for i in range(10)]
                )

        responses = asyncio.run(scenario())
        assert all(r.status is ResponseStatus.OK for r in responses)


class TestDeadlines:
    def test_deadline_expires_mid_solve_without_hanging(self):
        """A 50 ms deadline against a 500 ms solve answers in ~50 ms."""
        engine = SleepyEngine(delay_s=0.5)

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.0, num_workers=1,
            ) as service:
                start = time.monotonic()
                response = await service.submit(
                    request(deadline_s=0.05)
                )
                waited = time.monotonic() - start
            return response, waited

        response, waited = asyncio.run(scenario())
        assert response.status is ResponseStatus.EXPIRED
        assert "deadline" in response.reason
        # Answered at the deadline, not after the solve (0.5 s) -- the
        # generous bound absorbs CI scheduler noise.
        assert waited < 0.4

    def test_deadline_expires_while_queued(self):
        """Requests stuck behind a slow solve expire on time too."""
        engine = SleepyEngine(delay_s=0.3)

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.0, num_workers=1,
                max_batch_size=1,
            ) as service:
                first = await service.enqueue(request(seed=0))
                # Give the worker time to start solving the first
                # request so the second actually waits behind it.
                await asyncio.sleep(0.05)
                second = await service.enqueue(
                    request(seed=1, deadline_s=0.05)
                )
                return await asyncio.gather(first, second)

        first, second = asyncio.run(scenario())
        assert first.status is ResponseStatus.OK
        assert second.status is ResponseStatus.EXPIRED

    def test_generous_deadline_is_met(self):
        engine = SleepyEngine(delay_s=0.01)

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.0,
            ) as service:
                return await service.submit(request(deadline_s=5.0))

        response = asyncio.run(scenario())
        assert response.status is ResponseStatus.OK


class TestShutdown:
    def test_graceful_close_drains_in_flight_requests(self):
        engine = SleepyEngine(delay_s=0.02)

        async def scenario():
            service = ScreeningService(
                engine=engine, batch_window_s=0.1, num_workers=1,
            )
            await service.start()
            futures = [
                await service.enqueue(request(seed=i)) for i in range(6)
            ]
            # Close immediately: the batch window has not elapsed, so
            # the requests are still forming -- drain must flush them.
            await service.close()
            return await asyncio.gather(*futures)

        responses = asyncio.run(scenario())
        assert all(r.status is ResponseStatus.OK for r in responses)

    def test_abrupt_close_answers_rejected(self):
        engine = SleepyEngine(delay_s=0.02)

        async def scenario():
            service = ScreeningService(
                engine=engine, batch_window_s=5.0, num_workers=1,
            )
            await service.start()
            futures = [
                await service.enqueue(request(seed=i)) for i in range(4)
            ]
            await service.close(drain=False)
            return await asyncio.gather(*futures)

        responses = asyncio.run(scenario())
        assert all(r.status is ResponseStatus.REJECTED for r in responses)
        assert all("shutdown" in r.reason for r in responses)

    def test_submit_after_close_is_rejected(self):
        engine = SleepyEngine()

        async def scenario():
            service = ScreeningService(engine=engine)
            await service.start()
            await service.close()
            await service.start()  # reopen to prove close is not fatal
            ok = await service.submit(request(seed=0))
            await service.close()
            return ok

        response = asyncio.run(scenario())
        assert response.status is ResponseStatus.OK


class TestRetryOnce:
    def test_coalesced_failure_recovers_via_singleton_retry(self):
        engine = FlakyEngine()

        async def scenario():
            with use_telemetry() as telemetry:
                async with ScreeningService(
                    engine=engine, batch_window_s=0.05, num_workers=1,
                ) as service:
                    responses = await service.submit_many(
                        [request(seed=i) for i in range(4)]
                    )
                return responses, telemetry.snapshot()

        responses, snapshot = asyncio.run(scenario())
        assert all(r.status is ResponseStatus.OK for r in responses)
        assert all(r.attempts == 2 for r in responses)
        assert all(r.batch_size == 1 for r in responses)
        assert snapshot["counters"]["service.batch_retries"] == 1

    def test_persistent_failure_is_answered_failed(self):
        engine = BrokenEngine()

        async def scenario():
            async with ScreeningService(
                engine=engine, batch_window_s=0.0,
            ) as service:
                return await service.submit(request(seed=0))

        response = asyncio.run(scenario())
        assert response.status is ResponseStatus.FAILED
        assert "ValueError" in response.reason
        assert "no convergence" in response.reason
        assert response.attempts == 2
