"""Load generator: deterministic streams, sound reports, both loops."""

import asyncio

import pytest

from repro.service import ScreeningService
from repro.telemetry import use_telemetry
from repro.workloads import DiePopulation, LoadReport, ServiceLoadGenerator

from tests.service.test_service_overload import SleepyEngine


def generator(**kwargs):
    kwargs.setdefault("num_tsvs", 6)
    kwargs.setdefault("seed", 11)
    return ServiceLoadGenerator(**kwargs)


class TestStreams:
    def test_streams_are_deterministic(self):
        a = generator(voltages=(None, 0.9)).requests(20)
        b = generator(voltages=(None, 0.9)).requests(20)
        assert [(r.seed, r.vdd, r.tags) for r in a] == \
               [(r.seed, r.vdd, r.tags) for r in b]
        assert [r.tsv for r in a] == [r.tsv for r in b]

    def test_stream_walks_tsvs_then_voltages(self):
        stream = generator(voltages=(None, 0.9)).requests(14)
        # First pass: every TSV at the first voltage...
        assert all(r.vdd is None for r in stream[:6])
        # ...then the same TSVs again at the second voltage.
        assert all(r.vdd == 0.9 for r in stream[6:12])
        assert stream[6].tags["tsv_index"] == stream[0].tags["tsv_index"]

    def test_seeds_are_unique_per_request(self):
        stream = generator().requests(50)
        assert len({r.seed for r in stream}) == 50

    def test_different_master_seeds_differ(self):
        a = generator(seed=1).requests(10)
        b = generator(seed=2).requests(10)
        assert [r.seed for r in a] != [r.seed for r in b]

    def test_explicit_population_is_used(self):
        population = DiePopulation(num_tsvs=3, seed=5)
        stream = generator(population=population).requests(6)
        assert stream[0].tsv == population[0].tsv
        assert stream[3].tsv == population[0].tsv

    def test_empty_voltages_rejected(self):
        with pytest.raises(ValueError):
            generator(voltages=())


class TestRuns:
    def test_closed_loop_reports_all_ok(self):
        engine = SleepyEngine(delay_s=0.002)
        gen = generator()

        async def scenario():
            with use_telemetry():
                async with ScreeningService(
                    engine=engine, batch_window_s=0.005,
                ) as service:
                    return await gen.run_closed_loop(
                        service, num_requests=12, concurrency=4
                    )

        report = asyncio.run(scenario())
        assert isinstance(report, LoadReport)
        assert report.offered == report.completed == 12
        assert report.ok == 12
        assert report.rejected == report.expired == report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_s <= report.latency_p99_s
        assert report.latency_max_s >= report.latency_p99_s
        assert report.num_batches >= 1
        assert report.batch_occupancy_mean >= 1.0

    def test_open_loop_overload_sheds_into_the_report(self):
        engine = SleepyEngine(delay_s=0.05)
        gen = generator()

        async def scenario():
            with use_telemetry():
                async with ScreeningService(
                    engine=engine, admission="shed", max_queue_depth=2,
                    batch_window_s=0.0, max_batch_size=1, num_workers=1,
                ) as service:
                    return await gen.run_open_loop(
                        service, num_requests=20, rate_hz=2000.0
                    )

        report = asyncio.run(scenario())
        assert report.completed == 20
        assert report.rejected >= 1  # overload surfaced, not hidden
        assert report.ok >= 1
        assert report.ok + report.rejected + report.expired \
            + report.failed == 20

    def test_report_round_trips_to_json(self):
        import json

        engine = SleepyEngine(delay_s=0.001)
        gen = generator()

        async def scenario():
            with use_telemetry():
                async with ScreeningService(engine=engine) as service:
                    return await gen.run_closed_loop(
                        service, num_requests=6, concurrency=3
                    )

        report = asyncio.run(scenario())
        payload = json.loads(json.dumps(report.as_json_dict()))
        assert payload["ok"] == 6
        assert all(isinstance(k, str) for k in
                   payload["occupancy_buckets"])
        assert sum(payload["occupancy_buckets"].values()) == \
            payload["num_batches"]
