"""Unit tests for the cascade's predictive statistics machinery."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.cascade import (
    CalibrationTable,
    SignatureCurve,
    TailFit,
    binomial_upper_bound,
    normal_quantile,
)

NAN = math.nan


# ----------------------------------------------------------------------
# normal_quantile
# ----------------------------------------------------------------------
class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p, expected",
        [
            (0.5, 0.0),
            (0.975, 1.959963985),
            (0.025, -1.959963985),
            (0.841344746, 1.0),
            (0.999, 3.090232306),
            (0.001, -3.090232306),
        ],
    )
    def test_known_values(self, p, expected):
        assert normal_quantile(p) == pytest.approx(expected, abs=1e-6)

    def test_antisymmetric(self):
        for p in (0.01, 0.1, 0.3, 0.49, 0.0001):
            assert normal_quantile(p) == pytest.approx(
                -normal_quantile(1.0 - p), rel=1e-9, abs=1e-12
            )

    def test_round_trips_through_erf_cdf(self):
        for p in (0.001, 0.02425, 0.1, 0.5, 0.9, 0.97575, 0.999):
            x = normal_quantile(p)
            cdf = 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
            assert cdf == pytest.approx(p, abs=1e-8)

    def test_monotonic(self):
        grid = [k / 100 for k in range(1, 100)]
        values = [normal_quantile(p) for p in grid]
        assert values == sorted(values)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, p):
        with pytest.raises(ValueError):
            normal_quantile(p)


# ----------------------------------------------------------------------
# TailFit
# ----------------------------------------------------------------------
class TestTailFit:
    def test_from_samples_mean_and_sample_std(self):
        fit = TailFit.from_samples([1.0, 2.0, 3.0, 4.0])
        assert fit.center == pytest.approx(2.5)
        assert fit.sigma == pytest.approx(1.2909944, abs=1e-6)  # ddof=1
        assert fit.num_samples == 4

    def test_drops_non_finite_samples(self):
        fit = TailFit.from_samples([1.0, NAN, 3.0, math.inf, -math.inf])
        assert fit.center == pytest.approx(2.0)
        assert fit.num_samples == 2

    def test_single_sample_has_zero_sigma(self):
        fit = TailFit.from_samples([7.0])
        assert fit.sigma == 0.0
        assert fit.margin(0.01) == 0.0

    def test_zero_finite_samples_raises(self):
        with pytest.raises(ValueError):
            TailFit.from_samples([NAN, math.inf])

    def test_margin_is_quantile_times_sigma(self):
        fit = TailFit(center=0.0, sigma=2.0, num_samples=100)
        expected = normal_quantile(0.99) * 2.0
        assert fit.margin(0.01) == pytest.approx(expected)
        assert fit.margin(0.01, scale=1.5) == pytest.approx(1.5 * expected)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5])
    def test_margin_rejects_bad_epsilon(self, eps):
        fit = TailFit(center=0.0, sigma=1.0, num_samples=10)
        with pytest.raises(ValueError):
            fit.margin(eps)

    def test_picklable(self):
        fit = TailFit(center=1.0, sigma=0.5, num_samples=48)
        assert pickle.loads(pickle.dumps(fit)) == fit


# ----------------------------------------------------------------------
# binomial_upper_bound (Clopper-Pearson)
# ----------------------------------------------------------------------
class TestBinomialUpperBound:
    def test_zero_escapes_closed_form(self):
        # k=0: the bound solves (1-p)^n = alpha exactly.
        for n in (10, 480, 500):
            bound = binomial_upper_bound(0, n, confidence=0.95)
            assert bound == pytest.approx(1.0 - 0.05 ** (1.0 / n), abs=1e-9)

    def test_harness_scale_values(self):
        # The escape harness ships ~480 dies: 0 escapes certifies
        # epsilon=0.01, 1 escape still does, 2 does not.
        assert binomial_upper_bound(0, 480) < 0.01
        assert binomial_upper_bound(1, 480) < 0.01
        assert binomial_upper_bound(2, 480) > 0.01

    def test_bound_inverts_the_exact_cdf(self):
        k, n, conf = 3, 200, 0.95
        p = binomial_upper_bound(k, n, confidence=conf)
        cdf = sum(
            math.comb(n, i) * p**i * (1.0 - p) ** (n - i)
            for i in range(k + 1)
        )
        assert cdf == pytest.approx(1.0 - conf, abs=1e-6)

    def test_monotone_in_k(self):
        bounds = [binomial_upper_bound(k, 100) for k in range(0, 6)]
        assert bounds == sorted(bounds)
        assert bounds[0] < bounds[-1]

    def test_decreasing_in_n(self):
        assert binomial_upper_bound(1, 1000) < binomial_upper_bound(1, 100)

    def test_increasing_in_confidence(self):
        assert binomial_upper_bound(1, 100, confidence=0.99) > (
            binomial_upper_bound(1, 100, confidence=0.9)
        )

    def test_all_escapes_is_one(self):
        assert binomial_upper_bound(5, 5) == 1.0

    @pytest.mark.parametrize(
        "k, n, conf",
        [(0, 0, 0.95), (-1, 10, 0.95), (11, 10, 0.95), (1, 10, 0.0),
         (1, 10, 1.0)],
    )
    def test_rejects_bad_arguments(self, k, n, conf):
        with pytest.raises(ValueError):
            binomial_upper_bound(k, n, confidence=conf)


# ----------------------------------------------------------------------
# CalibrationTable.match
# ----------------------------------------------------------------------
def _curve(name, points):
    return SignatureCurve(
        name=name,
        points=tuple(
            tuple(tuple(stage) for stage in point) for point in points
        ),
    )


def _table(*curves):
    return CalibrationTable(
        voltages=(1.1, 0.8), num_stages=2, curves=tuple(curves)
    )


#: A benign diagonal curve: stage-0 u runs -1..+1 at both supplies while
#: the top stage amplifies it to -2..+2 (the healthy-curve gain shape).
HEALTHY = _curve(
    "healthy",
    [
        [(-1.0, -1.0), (-2.0, -2.0)],
        [(1.0, 1.0), (2.0, 2.0)],
    ],
)


class TestCalibrationMatch:
    def test_match_returns_top_stage_envelope(self):
        table = _table(HEALTHY)
        hits = table.match(0, [0.0, 0.0], tolerance=0.2)
        assert [h.signature for h in hits] == ["healthy"]
        (hyp,) = hits
        # Matching severities t in [0.4, 0.6] map to top u in [-0.5, 0.5];
        # the 33-point grid lands on t = 13/32 .. 19/32, i.e. +/-0.375.
        for v in range(2):
            assert not hyp.may_stick[v]
            assert hyp.low[v] == pytest.approx(-0.375, abs=1e-9)
            assert hyp.high[v] == pytest.approx(0.375, abs=1e-9)

    def test_no_match_outside_tolerance(self):
        table = _table(HEALTHY)
        assert table.match(0, [3.0, 3.0], tolerance=0.2) == []

    def test_matching_is_joint_across_supplies(self):
        # Consistent with the curve at each supply separately but not
        # jointly (t=0.25 at one supply, t=0.75 at the other).
        table = _table(HEALTHY)
        assert table.match(0, [-0.5, 0.5], tolerance=0.2) == []
        assert table.match(0, [0.5, 0.5], tolerance=0.2) != []

    def test_segment_stuck_at_measured_supply_is_refuted(self):
        # Stuck (NaN at both endpoints) at stage 0 / supply 1: a finite
        # measurement there refutes the hypothesis even though supply 0
        # matches perfectly.
        stuck_leak = _curve(
            "leak",
            [
                [(0.1, NAN), (0.5, -3.0)],
                [(0.3, NAN), (1.5, -9.0)],
            ],
        )
        table = _table(stuck_leak)
        assert table.match(0, [0.2, 0.0], tolerance=0.3) == []

    def test_transition_segment_matches_on_usable_supplies(self):
        # One endpoint stuck, one oscillating at supply 1: the segment
        # spans the stick threshold, so supply 1 cannot discriminate but
        # does not refute; supply 0 alone decides the match.
        transition = _curve(
            "leak",
            [
                [(0.1, 0.5), (0.5, -3.0)],
                [(0.3, NAN), (1.5, NAN)],
            ],
        )
        table = _table(transition)
        hits = table.match(0, [0.2, 9.9], tolerance=0.3)
        assert [h.signature for h in hits] == ["leak"]

    def test_top_stage_stick_sets_may_stick(self):
        # The matched severity range borders a severity whose top-stage
        # ring is stuck at supply 0: the envelope must carry may_stick.
        sticky_top = _curve(
            "void",
            [
                [(0.0, 0.0), (1.0, 1.0)],
                [(0.4, 0.4), (NAN, 3.0)],
            ],
        )
        table = _table(sticky_top)
        (hyp,) = table.match(0, [0.2, 0.2], tolerance=0.3)
        assert hyp.may_stick[0]
        assert not hyp.may_stick[1]
        # The finite endpoint still bounds the envelope at supply 0.
        assert hyp.low[0] == pytest.approx(1.0)
        assert hyp.high[0] == pytest.approx(1.0)

    def test_multiple_curves_yield_multiple_hypotheses(self):
        shifted = _curve(
            "leak",
            [
                [(-0.2, -0.2), (4.0, 4.0)],
                [(0.8, 0.8), (6.0, 6.0)],
            ],
        )
        table = _table(HEALTHY, shifted)
        hits = table.match(0, [0.1, 0.1], tolerance=0.35)
        assert sorted(h.signature for h in hits) == ["healthy", "leak"]

    @pytest.mark.parametrize("stage", [-1, 2, 5])
    def test_rejects_stage_out_of_range(self, stage):
        with pytest.raises(ValueError):
            _table(HEALTHY).match(stage, [0.0, 0.0], tolerance=0.3)

    def test_table_is_picklable(self):
        table = _table(HEALTHY)
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.match(0, [0.0, 0.0], tolerance=0.2)
