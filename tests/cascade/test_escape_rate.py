"""Statistical acceptance harness: cascade escape rate vs the oracle.

Screens a seeded ≥500-die wafer population twice -- once through the
multi-fidelity cascade, once with a full-fidelity flow running the
ladder's top engine on every TSV -- and asserts the exact
(Clopper-Pearson) binomial upper bound on the observed die escape rate
stays within the configured budget ``epsilon``.

An *escape* is a die the cascade ships that the top-stage oracle would
reject.  Faults below the top engine's own detection threshold are
**not** escapes -- the bound is relative to the top-stage verdict, not
to ground truth (the paper's band test has its own physical escape
floor; the cascade must not add to it).

The population runs in deterministic measurement mode with zero
population capacitance spread, so every solve is memoized under
seed-free content keys: the cascade's escalations and the oracle's
measurements of the same TSV share one solve, which is what makes a
700-die double screen affordable (~half a minute instead of hours).

Set ``REPRO_CASCADE_TRANSISTOR=1`` to also run the (much slower)
three-stage variant whose oracle is the transistor-level engine -- the
full transistor-level verdict of the issue's acceptance criteria; CI's
cascade-smoke job enables it.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.cascade import CascadeConfig, binomial_upper_bound
from repro.core.engines.registry import spec
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.workloads.flow import ScreeningFlow
from repro.workloads.generator import DefectStatistics, DiePopulation

from tests.cascade.conftest import FLOW_KWARGS, TOP_SPEC, VOLTAGES

N_DIES = 520
N_TSVS = 4
CONFIDENCE = 0.95

#: Zero healthy capacitance spread: every fault-free TSV is the same
#: circuit, so the oracle's healthy measurements collapse to one
#: memoized solve per voltage.  Characterization keeps its own spread.
POPULATION_STATS = DefectStatistics(cap_variation_rel=0.0)


def _die_seed(k: int) -> int:
    return 1000 + k


def _measure_seed(k: int) -> int:
    return 5000 + k


def _rejected(metrics) -> bool:
    return (metrics.detected + metrics.overkill) > 0


@pytest.fixture(scope="module")
def population():
    return [
        DiePopulation(
            num_tsvs=N_TSVS, stats=POPULATION_STATS, seed=_die_seed(k)
        )
        for k in range(N_DIES)
    ]


@pytest.fixture(scope="module")
def screened(cascade_flow, oracle_flow, population):
    """(cascade rejected?, oracle rejected?, cascade metrics) per die."""
    results = []
    for k, pop in enumerate(population):
        metrics = cascade_flow.screen_die(pop, measure_seed=_measure_seed(k))
        oracle = oracle_flow.screen_die(pop, measure_seed=_measure_seed(k))
        results.append((_rejected(metrics), _rejected(oracle), metrics))
    return results


def test_population_is_meaningful(population, screened):
    """The harness must exercise real rejections, not a vacuous pass."""
    assert N_DIES >= 500
    faulty_dies = sum(1 for pop in population if pop.faulty_indices())
    oracle_rejected = sum(1 for _, orc, _ in screened if orc)
    assert faulty_dies >= 20
    assert oracle_rejected >= 10


def test_escape_rate_within_epsilon(cascade_config, screened):
    """Clopper-Pearson upper bound on the escape rate stays <= epsilon."""
    shipped = sum(1 for casc, _, _ in screened if not casc)
    escapes = sum(1 for casc, orc, _ in screened if not casc and orc)
    assert shipped >= 300  # enough statistics to certify epsilon=0.01
    bound = binomial_upper_bound(escapes, shipped, confidence=CONFIDENCE)
    assert bound <= cascade_config.epsilon, (
        f"escape bound {bound:.4f} (= {escapes}/{shipped} at "
        f"{CONFIDENCE:.0%}) exceeds epsilon={cascade_config.epsilon}"
    )


def test_early_flags_rarely_disagree_with_oracle(screened):
    """Confident early flags must not invent rejections wholesale.

    Overkill against the oracle is not epsilon-bounded (it costs yield
    review time, not shipped defects), but a healthy routing policy
    keeps it near zero on this population.
    """
    rejected = sum(1 for casc, _, _ in screened if casc)
    overkill = sum(1 for casc, orc, _ in screened if casc and not orc)
    assert rejected > 0
    assert overkill <= max(1, rejected // 20)


def test_top_stage_verdicts_are_oracle_verdicts(
    cascade_flow, oracle_flow, population
):
    """A TSV resolved at the top stage gets the oracle's own verdict.

    Same engine, same band, same memoized deterministic measurement --
    escapes can only come from stages below the top, which is what the
    escape budget actually bounds.
    """
    cascade = cascade_flow.cascade
    top = cascade.top_stage
    checked = 0
    for k, pop in enumerate(population):
        decision = cascade.classify_die(pop, _measure_seed(k))
        for tsv_decision in decision.tsv_decisions:
            if tsv_decision.stage != top:
                continue
            tsv = pop[tsv_decision.index].tsv
            oracle_flag = False
            for vdd in VOLTAGES:
                delta_t = oracle_flow._measure(tsv, vdd, seed=0)
                if not math.isfinite(delta_t):
                    oracle_flag = True
                    break
                if not oracle_flow.bands[vdd].contains(delta_t):
                    oracle_flag = True
                    break
            assert tsv_decision.flagged == oracle_flag
            checked += 1
    assert checked >= 10  # the ladder must actually have been exercised


def test_escalation_is_selective(screened):
    """The cascade must not degenerate into screening everything twice."""
    total_tsvs = sum(metrics.num_tsvs for _, _, metrics in screened)
    escalated = sum(metrics.escalated for _, _, metrics in screened)
    assert 0 < escalated < 0.10 * total_tsvs
    analytic = sum(
        metrics.stage_measurements.get("analytic", 0)
        for _, _, metrics in screened
    )
    top_stage = sum(
        metrics.stage_measurements.get("stagedelay", 0)
        for _, _, metrics in screened
    )
    assert analytic > 10 * top_stage


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_CASCADE_TRANSISTOR") != "1",
    reason="transistor-level oracle takes minutes; "
    "set REPRO_CASCADE_TRANSISTOR=1 (CI cascade-smoke does)",
)
def test_three_stage_cascade_vs_transistor_oracle():
    """Analytic -> stagedelay -> transistor vs a transistor oracle.

    A reduced population (the transistor engine costs seconds per
    solve) with a reduced calibration grid; asserts zero escapes
    against the full transistor-level verdict.
    """
    transistor = spec("transistor", timestep=8e-12)
    config = CascadeConfig(
        escalation=(TOP_SPEC, transistor),
        stage_characterization_samples=48,
    )
    kwargs = dict(FLOW_KWARGS)
    kwargs["voltages"] = (1.1,)
    signatures = {
        "healthy": [
            Tsv(params=Tsv().params.scaled(k)) for k in (0.9, 1.0, 1.1)
        ],
        "void": [
            Tsv(fault=ResistiveOpen(r_open=r, x=0.5))
            for r in (300.0, 2700.0, 24300.0)
        ],
        "leak": [
            Tsv(fault=Leakage(r_leak=r))
            for r in (1200.0, 4000.0, 16000.0)
        ],
    }
    cascade_flow = ScreeningFlow(
        "analytic", cascade=config, cascade_signatures=signatures, **kwargs
    )
    cascade = cascade_flow.cascade
    # The oracle reuses the cascade's own top-stage band: transferring
    # the analytic characterization up the ladder costs a handful of
    # nominal transistor solves instead of a 48-sample Monte Carlo, and
    # makes any verdict difference pure routing (identical bands).
    oracle_flow = ScreeningFlow(
        transistor,
        bands={
            vdd: cascade.stage_band(cascade.top_stage, vdd).band
            for vdd in kwargs["voltages"]
        },
        **kwargs,
    )

    dies = [
        DiePopulation(num_tsvs=4, stats=POPULATION_STATS, seed=_die_seed(k))
        for k in range(40)
    ]
    escapes = shipped = 0
    for k, pop in enumerate(dies):
        casc = _rejected(
            cascade_flow.screen_die(pop, measure_seed=_measure_seed(k))
        )
        orc = _rejected(
            oracle_flow.screen_die(pop, measure_seed=_measure_seed(k))
        )
        if not casc:
            shipped += 1
            if orc:
                escapes += 1
    assert shipped > 20
    assert escapes == 0
