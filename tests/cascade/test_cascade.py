"""Integration tests for the cascade router itself.

Everything here reuses the session-scoped ``cascade_flow`` ladder
(analytic stage 0, stagedelay top) so the characterization cost is paid
once for the whole test package.  Router variants that need different
policy knobs are built from the fixture cascade's exported state, which
makes them construction-cheap.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cascade import CascadeConfig, CascadeScreen, CascadeState
from repro.core.engines.registry import spec
from repro.core.tsv import Leakage, Tsv
from repro.spice.montecarlo import ProcessVariation
from repro.workloads.generator import TsvRecord

from tests.cascade.conftest import FLOW_KWARGS, TOP_SPEC, VOLTAGES

#: A leakage severe enough that the stage-0 analytic ring does not
#: oscillate at the lower supply -- the classic stuck signature.
STUCK_LEAK = Tsv(fault=Leakage(r_leak=500.0))


def _variant(cascade, **config_kwargs) -> CascadeScreen:
    """A router with different policy knobs but the fixture's bands."""
    base = dict(
        escalation=(TOP_SPEC,), stage_characterization_samples=48
    )
    base.update(config_kwargs)
    return CascadeScreen(
        stage0="analytic",
        config=CascadeConfig(**base),
        voltages=VOLTAGES,
        variation=ProcessVariation(),
        characterization_samples=FLOW_KWARGS["characterization_samples"],
        tsv_cap_variation_rel=FLOW_KWARGS["tsv_cap_variation_rel"],
        seed=FLOW_KWARGS["seed"],
        state=cascade.export_state(),
        measurement_variation=None,
    )


class TestConstruction:
    def test_stage_names_deduplicate(self):
        cascade = CascadeScreen(
            stage0="analytic",
            config=CascadeConfig(escalation=("analytic", "stagedelay")),
            voltages=(1.1,),
            variation=ProcessVariation(),
        )
        assert cascade.stage_names == ["analytic", "analytic#1",
                                       "stagedelay"]
        assert cascade.num_stages == 3
        assert cascade.top_stage == 2

    def test_engine_spec_ladder_names(self):
        cascade = CascadeScreen(
            stage0="analytic",
            config=CascadeConfig(
                escalation=(spec("stagedelay", timestep=8e-12),)
            ),
            voltages=(1.1,),
            variation=ProcessVariation(),
        )
        assert cascade.stage_names == ["analytic", "stagedelay"]

    def test_requires_a_supply_voltage(self):
        with pytest.raises(ValueError):
            CascadeScreen(
                stage0="analytic",
                config=CascadeConfig(),
                voltages=(),
                variation=ProcessVariation(),
            )

    def test_stage_zero_must_support_batched_mc(self):
        cascade = CascadeScreen(
            stage0=spec("transistor", timestep=8e-12),
            config=CascadeConfig(escalation=("analytic",)),
            voltages=(1.1,),
            variation=ProcessVariation(),
        )
        with pytest.raises(ValueError, match="batched Monte Carlo"):
            cascade.stage_band(0, 1.1)


class TestRouting:
    def test_healthy_tsv_resolves_at_stage_zero(self, cascade_flow):
        decision = cascade_flow.cascade.classify(Tsv(), index=0, seed=0)
        assert not decision.flagged
        assert decision.stage == 0
        assert decision.stage_name == "analytic"
        assert decision.reasons == []
        # T1 per supply plus the group's T2 reference.
        assert decision.measurements == 2 * len(VOLTAGES)
        assert decision.stage_measurements == {
            "analytic": 2 * len(VOLTAGES)
        }

    def test_stuck_oscillator_flags_without_escalating(self, cascade_flow):
        decision = cascade_flow.cascade.classify(STUCK_LEAK, index=0, seed=0)
        assert decision.flagged
        assert decision.stage == 0
        assert decision.reasons == []

    def test_classification_is_deterministic(self, cascade_flow):
        first = cascade_flow.cascade.classify(Tsv(), index=5, seed=160)
        again = cascade_flow.cascade.classify(Tsv(), index=5, seed=160)
        assert first == again

    def test_preflight_warning_starts_at_stage_one(self, cascade_flow):
        decision = cascade_flow.cascade.classify(
            Tsv(), index=0, seed=0, preflight_warned=True
        )
        assert decision.stage == 1
        assert decision.stage_name == "stagedelay"
        assert decision.reasons[0] == "preflight"
        assert not decision.flagged  # healthy at the top band too

    def test_preflight_escalation_can_be_disabled(self, cascade_flow):
        relaxed = _variant(
            cascade_flow.cascade, escalate_on_preflight=False
        )
        decision = relaxed.classify(
            Tsv(), index=0, seed=0, preflight_warned=True
        )
        assert decision.stage == 0
        assert decision.reasons == []


class TestClassifyDie:
    def test_die_decision_records_everything(self, cascade_flow):
        records = [
            TsvRecord(index=0, tsv=Tsv()),
            TsvRecord(index=1, tsv=STUCK_LEAK),
        ]
        decision = cascade_flow.cascade.classify_die(records, base_seed=7)
        assert decision.rejected
        assert len(decision.tsv_decisions) == 2
        assert [d.index for d in decision.tsv_decisions] == [0, 1]
        assert decision.tsv_decisions[1].flagged
        assert decision.max_stage == max(
            d.stage for d in decision.tsv_decisions
        )
        assert decision.max_stage_name in cascade_flow.cascade.stage_names
        assert len(decision.die_fingerprint) == 64  # sha-256 hex

    def test_fingerprint_tracks_population_content(self, cascade_flow):
        cascade = cascade_flow.cascade
        one = cascade.classify_die([TsvRecord(0, Tsv())], base_seed=7)
        same = cascade.classify_die([TsvRecord(0, Tsv())], base_seed=7)
        other = cascade.classify_die([TsvRecord(0, STUCK_LEAK)], base_seed=7)
        assert one.die_fingerprint == same.die_fingerprint
        assert one.die_fingerprint != other.die_fingerprint

    def test_preflight_marks_the_die_record(self, cascade_flow):
        decision = cascade_flow.cascade.classify_die(
            [TsvRecord(0, Tsv())], base_seed=7, preflight_warned=True
        )
        assert decision.preflight_escalated
        assert decision.max_stage >= 1


class TestState:
    def test_prepare_builds_all_bands_and_calibration(self, cascade_flow):
        state = cascade_flow.cascade.export_state()
        expected_keys = {
            (stage, vdd)
            for stage in range(cascade_flow.cascade.num_stages)
            for vdd in VOLTAGES
        }
        assert set(state.bands) == expected_keys
        assert state.calibration is not None
        assert state.calibration.voltages == VOLTAGES
        assert state.calibration.num_stages == 2

    def test_state_pickles(self, cascade_flow):
        state = cascade_flow.cascade.export_state()
        clone = pickle.loads(pickle.dumps(state))
        assert set(clone.bands) == set(state.bands)
        # NaN curve points (stuck severities) defeat ``==``; the repr
        # captures every field bit-for-bit including them.
        assert repr(clone.calibration) == repr(state.calibration)

    def test_worker_inherits_parent_characterization(self, cascade_flow):
        cascade = cascade_flow.cascade
        state = pickle.loads(pickle.dumps(cascade.export_state()))
        worker = CascadeScreen(
            stage0="analytic",
            config=cascade.config,
            voltages=VOLTAGES,
            variation=ProcessVariation(),
            characterization_samples=FLOW_KWARGS["characterization_samples"],
            tsv_cap_variation_rel=FLOW_KWARGS["tsv_cap_variation_rel"],
            seed=FLOW_KWARGS["seed"],
            state=state,
            measurement_variation=None,
        )
        # Bands come from the state, not a fresh characterization ...
        for key, band in state.bands.items():
            assert worker.stage_band(*key) == band
        # ... and routing is bit-identical to the parent's.
        records = [TsvRecord(0, Tsv()), TsvRecord(1, STUCK_LEAK)]
        assert (
            worker.classify_die(records, base_seed=7).as_dict()
            == cascade.classify_die(records, base_seed=7).as_dict()
        )

    def test_default_state_is_empty(self):
        state = CascadeState()
        assert state.bands == {}
        assert state.calibration is None
