"""Unit tests for the cascade policy data layer."""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.cascade import (
    CascadeConfig,
    DieDecision,
    EscalationReason,
    TsvDecision,
    parse_die_decision,
)


class TestCascadeConfig:
    def test_defaults_validate(self):
        config = CascadeConfig()
        assert config.escalation == ("stagedelay", "transistor")
        assert 0.0 < config.epsilon < 1.0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CascadeConfig().epsilon = 0.5  # type: ignore[misc]

    def test_picklable(self):
        config = CascadeConfig(escalation=("stagedelay",), epsilon=0.02)
        assert pickle.loads(pickle.dumps(config)) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"escalation": ()},
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"epsilon": -0.1},
            {"margin_scale": 0.0},
            {"margin_scale": -1.0},
            {"match_tolerance": 0.0},
            {"match_tolerance": -0.2},
            {"predict_sigma": -0.01},
            {"noise_sigma": -0.01},
            {"stage_characterization_samples": 1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CascadeConfig(**kwargs)

    def test_zero_sigmas_are_legal(self):
        # A perfectly calibrated deterministic cascade may claim zero
        # residuals; only negative values are nonsense.
        config = CascadeConfig(predict_sigma=0.0, noise_sigma=0.0)
        assert config.predict_sigma == 0.0


class TestEscalationReason:
    def test_reason_values_are_the_telemetry_suffixes(self):
        assert {r.value for r in EscalationReason} == {
            "near_band", "low_agreement", "novel", "preflight"
        }

    def test_reasons_serialize_as_plain_strings(self):
        assert json.loads(json.dumps(EscalationReason.NOVEL)) == "novel"


def _die_decision() -> DieDecision:
    return DieDecision(
        die_fingerprint="abc123",
        rejected=True,
        max_stage=1,
        max_stage_name="stagedelay",
        preflight_escalated=True,
        tsv_decisions=[
            TsvDecision(
                index=0, flagged=False, stage=0, stage_name="analytic",
                measurements=4,
            ),
            TsvDecision(
                index=1, flagged=True, stage=1, stage_name="stagedelay",
                reasons=[EscalationReason.NEAR_BAND.value],
                measurements=8,
            ),
        ],
    )


class TestDecisionRecords:
    def test_round_trip_through_as_dict(self):
        decision = _die_decision()
        raw = json.loads(json.dumps(decision.as_dict()))
        clone = parse_die_decision(raw)
        assert clone.as_dict() == decision.as_dict()

    def test_escalated_counts_tsvs_past_stage_zero(self):
        assert _die_decision().escalated == 1
        assert DieDecision(
            die_fingerprint="x", rejected=False, max_stage=0,
            max_stage_name="analytic",
        ).escalated == 0

    def test_parse_tolerates_missing_optional_fields(self):
        decision = parse_die_decision({
            "die_fingerprint": "f",
            "rejected": False,
            "max_stage": 0,
            "max_stage_name": "analytic",
            "tsvs": [{
                "index": 3, "flagged": False, "stage": 0,
                "stage_name": "analytic",
            }],
        })
        assert decision.preflight_escalated is False
        (tsv,) = decision.tsv_decisions
        assert tsv.reasons == []
        assert tsv.measurements == 0

    def test_as_dict_is_json_clean(self):
        # Goldens are written with sort_keys: every value must be a
        # plain JSON scalar/collection.
        text = json.dumps(_die_decision().as_dict(), sort_keys=True)
        assert "near_band" in text
