"""Shared fixtures for the cascade test package.

Characterizing a two-stage ladder (bands, quantization guards, and the
signature-calibration probes through the stagedelay engine) costs
seconds, so the flows are session-scoped and shared by the statistical
escape harness, the golden routing fixtures, and the integration tests.
Everything runs in deterministic measurement mode
(``measurement_variation=None``): measurements are nominal solves
memoized under seed-free keys, which is both what makes a 500-die
cascade-vs-oracle comparison affordable and the mode the escape-rate
bound is certified in.
"""

from __future__ import annotations

import pytest

from repro.cascade import CascadeConfig
from repro.core.engines.registry import EngineSpec, spec
from repro.workloads.flow import ScreeningFlow

#: Two supplies keep solve counts down while preserving the
#: multi-voltage signature matching the cascade's decisions rest on.
VOLTAGES = (1.1, 0.8)

#: 8 ps steps: crossing interpolation still resolves DeltaT to well
#: under a picosecond, at ~0.2 s per scalar solve.
TOP_SPEC = spec("stagedelay", timestep=8e-12)

SEED = 11

FLOW_KWARGS = dict(
    voltages=VOLTAGES,
    characterization_samples=48,
    tsv_cap_variation_rel=0.02,
    seed=SEED,
    preflight=False,
    measurement_variation=None,
)


def top_spec() -> EngineSpec:
    return TOP_SPEC


@pytest.fixture(scope="session")
def cascade_config() -> CascadeConfig:
    return CascadeConfig(
        escalation=(TOP_SPEC,), stage_characterization_samples=48
    )


@pytest.fixture(scope="session")
def cascade_flow(cascade_config) -> ScreeningFlow:
    """The cascade under test: analytic stage 0, stagedelay top."""
    flow = ScreeningFlow("analytic", cascade=cascade_config, **FLOW_KWARGS)
    flow.cascade.prepare()
    return flow


@pytest.fixture(scope="session")
def oracle_flow() -> ScreeningFlow:
    """A full-fidelity flow running the ladder's top engine everywhere.

    Same characterization sample count, seed, group size, and window as
    the cascade's top stage, so its band is bit-identical to the
    cascade's -- any verdict difference is the cascade's routing, not
    characterization drift.
    """
    return ScreeningFlow(TOP_SPEC, **FLOW_KWARGS)
