"""Golden escalation-decision fixtures.

A fixed gallery of crafted dies -- healthy, stuck, weak leakage, mild
and severe voids, mixed, preflight-warned -- is routed through the
standard two-stage ladder and the full :class:`DieDecision` records
(die fingerprint, stage reached per TSV, escalation reasons, verdicts)
are compared against ``tests/data/cascade_decisions.json``.  Routing
regressions -- a changed tolerance, a broken refutation rule, a
reordered ladder -- surface here as a readable fixture diff instead of
a statistical harness failure.

Regenerate after an *intentional* routing change with::

    PYTHONPATH=src python -m tests.cascade.test_decisions_golden

and review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.workloads.generator import TsvRecord

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "cascade_decisions.json"

BASE_SEED = 97

#: name -> (TSVs, preflight_warned).  Severities are chosen to span the
#: router's whole decision surface: confident stage-0 passes and flags,
#: stuck oscillators, and the ambiguous mid-range that escalates.
CRAFTED_DIES: List[Tuple[str, Tuple[Tsv, ...], bool]] = [
    ("healthy", (Tsv(), Tsv(), Tsv()), False),
    ("stuck_leak", (Tsv(), Tsv(fault=Leakage(r_leak=500.0))), False),
    ("weak_leak", (Tsv(fault=Leakage(r_leak=2700.0)),), False),
    ("strong_leak", (Tsv(fault=Leakage(r_leak=1200.0)),), False),
    ("void_mild", (Tsv(fault=ResistiveOpen(r_open=300.0, x=0.5)),), False),
    (
        "void_severe",
        (Tsv(fault=ResistiveOpen(r_open=24300.0, x=0.5)),),
        False,
    ),
    (
        "mixed",
        (
            Tsv(),
            Tsv(fault=ResistiveOpen(r_open=2700.0, x=0.5)),
            Tsv(fault=Leakage(r_leak=2000.0)),
        ),
        False,
    ),
    ("preflight_healthy", (Tsv(), Tsv()), True),
]


def build_decisions(cascade) -> Dict[str, Any]:
    """Route every crafted die; returns the golden JSON structure."""
    decisions: Dict[str, Any] = {}
    for name, tsvs, preflight in CRAFTED_DIES:
        records = [TsvRecord(index=i, tsv=t) for i, t in enumerate(tsvs)]
        decision = cascade.classify_die(
            records, base_seed=BASE_SEED, preflight_warned=preflight
        )
        decisions[name] = decision.as_dict()
    return decisions


def test_routing_matches_golden_fixtures(cascade_flow):
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = build_decisions(cascade_flow.cascade)
    assert actual.keys() == expected.keys()
    for name in expected:
        assert actual[name] == expected[name], (
            f"routing changed for crafted die {name!r}; if intentional,"
            " regenerate with"
            " PYTHONPATH=src python -m tests.cascade.test_decisions_golden"
        )


def test_goldens_exercise_the_decision_surface():
    """The fixture file itself must keep covering all router outcomes."""
    goldens = json.loads(GOLDEN_PATH.read_text())
    stages = {t["stage"] for die in goldens.values() for t in die["tsvs"]}
    reasons = {
        r for die in goldens.values() for t in die["tsvs"]
        for r in t["reasons"]
    }
    verdicts = {t["flagged"] for die in goldens.values() for t in die["tsvs"]}
    assert stages == {0, 1}, "need both stage-0 and escalated decisions"
    assert verdicts == {True, False}
    assert "preflight" in reasons


def main() -> None:
    from repro.cascade import CascadeConfig
    from repro.workloads.flow import ScreeningFlow

    from tests.cascade.conftest import FLOW_KWARGS, TOP_SPEC

    flow = ScreeningFlow(
        "analytic",
        cascade=CascadeConfig(
            escalation=(TOP_SPEC,), stage_characterization_samples=48
        ),
        **FLOW_KWARGS,
    )
    flow.cascade.prepare()
    decisions = build_decisions(flow.cascade)
    GOLDEN_PATH.write_text(
        json.dumps(decisions, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(decisions)} golden die decisions to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
