"""Property-based tests (hypothesis) on core invariants.

These exercise the closed-form layers (analytic engine, counter math,
LFSR, waveform utilities, TSV models) across randomized inputs; the
invariants are the paper's physical claims stated as properties.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.engines import AnalyticEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.tsv import Leakage, ResistiveOpen, Tsv, TsvParameters
from repro.dft.counter import CounterMeasurement, count_bounds
from repro.dft.lfsr import Lfsr, LfsrMeasurement
from repro.spice.waveform import Waveform

ENGINES = {
    vdd: AnalyticEngine(RingOscillatorConfig(vdd=vdd))
    for vdd in (0.75, 0.9, 1.1)
}

voltages = st.sampled_from(sorted(ENGINES))
r_opens = st.floats(min_value=1.0, max_value=1e6)
locations = st.floats(min_value=0.0, max_value=1.0)
r_leaks = st.floats(min_value=10.0, max_value=1e8)


class TestOpenFaultProperties:
    @given(vdd=voltages, r1=r_opens, r2=r_opens, x=locations)
    @settings(max_examples=60, deadline=None)
    def test_delta_t_monotone_decreasing_in_r_open(self, vdd, r1, r2, x):
        """More open resistance never makes the loop slower."""
        assume(abs(math.log10(r1) - math.log10(r2)) > 1e-6)
        engine = ENGINES[vdd]
        lo, hi = sorted((r1, r2))
        dt_lo = engine.delta_t(Tsv(fault=ResistiveOpen(lo, x)))
        dt_hi = engine.delta_t(Tsv(fault=ResistiveOpen(hi, x)))
        assert dt_hi <= dt_lo + abs(dt_lo) * 1e-5 + 1e-14

    @given(vdd=voltages, r=r_opens, x=locations)
    @settings(max_examples=60, deadline=None)
    def test_open_never_exceeds_fault_free(self, vdd, r, x):
        """An open can only make the TSV path faster, never slower."""
        engine = ENGINES[vdd]
        ff = engine.delta_t(Tsv())
        faulty = engine.delta_t(Tsv(fault=ResistiveOpen(r, x)))
        assert faulty <= ff + abs(ff) * 1e-5 + 1e-14

    @given(vdd=voltages, r=st.floats(min_value=100.0, max_value=1e5),
           x1=locations, x2=locations)
    @settings(max_examples=60, deadline=None)
    def test_shallower_defect_stronger_signature(self, vdd, r, x1, x2):
        """Monotonicity in depth: defects near the driver hide more
        downstream capacitance."""
        assume(abs(x1 - x2) > 0.05)
        engine = ENGINES[vdd]
        ff = engine.delta_t(Tsv())
        shallow, deep = sorted((x1, x2))
        s_shallow = ff - engine.delta_t(Tsv(fault=ResistiveOpen(r, shallow)))
        s_deep = ff - engine.delta_t(Tsv(fault=ResistiveOpen(r, deep)))
        assert s_shallow >= s_deep - abs(s_deep) * 1e-5 - 1e-14


class TestLeakageProperties:
    @given(vdd=voltages, r=r_leaks)
    @settings(max_examples=60, deadline=None)
    def test_below_threshold_sticks_above_oscillates(self, vdd, r):
        engine = ENGINES[vdd]
        r_stop = engine.oscillation_stop_r_leak()
        assume(abs(r / r_stop - 1.0) > 0.02)  # avoid the numeric edge
        dt = engine.delta_t(Tsv(fault=Leakage(r)))
        if r < r_stop:
            assert math.isnan(dt)
        else:
            assert math.isfinite(dt)

    @given(v1=voltages, v2=voltages)
    @settings(max_examples=20, deadline=None)
    def test_stop_threshold_antitone_in_vdd(self, v1, v2):
        assume(v1 != v2)
        lo, hi = sorted((v1, v2))
        assert (
            ENGINES[hi].oscillation_stop_r_leak()
            < ENGINES[lo].oscillation_stop_r_leak()
        )

    @given(vdd=voltages, factor=st.floats(min_value=1.02, max_value=1.15))
    @settings(max_examples=40, deadline=None)
    def test_near_threshold_leak_slows_loop(self, vdd, factor):
        """Just above the stop threshold the receiver-regeneration
        divergence dominates and DeltaT rises well above fault-free.
        (Further above the threshold a small negative dip exists -- the
        early-droop effect documented in EXPERIMENTS.md -- so the window
        here is deliberately tight.)"""
        engine = ENGINES[vdd]
        r_stop = engine.oscillation_stop_r_leak()
        dt = engine.delta_t(Tsv(fault=Leakage(r_stop * factor)))
        assert dt > engine.delta_t(Tsv())


class TestPeriodProperties:
    @given(vdd=voltages,
           enabled=st.lists(st.booleans(), min_size=5, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_period_monotone_in_enabled_set(self, vdd, enabled):
        """Enabling more TSVs never speeds the loop up."""
        engine = ENGINES[vdd]
        tsvs = [Tsv()] * 5
        t_partial = engine.period(tsvs, enabled)
        t_none = engine.period(tsvs, [False] * 5)
        assert t_partial >= t_none - 1e-15

    @given(vdd=voltages, scale=st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_delta_t_monotone_in_capacitance(self, vdd, scale):
        """A bigger TSV capacitance is a heavier load."""
        engine = ENGINES[vdd]
        base = engine.delta_t(Tsv())
        scaled = engine.delta_t(Tsv(params=TsvParameters().scaled(scale)))
        if scale > 1.0:
            assert scaled > base
        elif scale < 1.0:
            assert scaled < base


class TestCounterProperties:
    @given(
        period=st.floats(min_value=0.5e-9, max_value=50e-9),
        window_cycles=st.integers(min_value=10, max_value=100000),
        phase_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_count_always_within_paper_bounds(self, period, window_cycles,
                                              phase_frac):
        window = period * window_cycles + period / 3.0
        cm = CounterMeasurement(bits=40, window=window)
        count = cm.count_edges(period, phase_frac * period)
        lo, hi = count_bounds(period, window)
        assert lo <= count <= hi

    @given(
        period=st.floats(min_value=1e-9, max_value=20e-9),
        phase_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_error_within_bound(self, period, phase_frac):
        window = 2e-6
        cm = CounterMeasurement(bits=30, window=window)
        estimate = cm.measure(period, phase_frac * period)
        e_plus = period**2 / (window - period)
        assert abs(estimate - period) <= e_plus * (1 + 1e-9)


class TestLfsrProperties:
    @given(bits=st.integers(min_value=2, max_value=16),
           steps=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_lookup_decodes_any_advance(self, bits, steps):
        lm = LfsrMeasurement(bits=bits)
        lfsr = Lfsr(bits, lm.seed)
        state = lfsr.advance(steps % lfsr.period)
        assert lm.decode(state) == steps % lfsr.period

    @given(bits=st.integers(min_value=2, max_value=14),
           seed_steps=st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_state_never_zero(self, bits, seed_steps):
        lfsr = Lfsr(bits)
        lfsr.advance(seed_steps)
        assert lfsr.state != 0


class TestWaveformProperties:
    @given(
        period_ns=st.floats(min_value=0.5, max_value=5.0),
        cycles=st.integers(min_value=6, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_period_recovered_from_sine(self, period_ns, cycles):
        period = period_ns * 1e-9
        t = np.linspace(0, period * cycles, cycles * 64)
        w = Waveform(t, np.sin(2 * np.pi * t / period))
        assert w.period(0.0, skip_cycles=1, min_cycles=2) == pytest.approx(
            period, rel=0.02
        )

    @given(level=st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_rise_fall_alternate(self, level):
        t = np.linspace(0, 10e-9, 4000)
        w = Waveform(t, np.sin(2 * np.pi * t / 1e-9))
        rises = w.crossings(level, "rise")
        falls = w.crossings(level, "fall")
        # Between consecutive rises there is exactly one fall.
        for r1, r2 in zip(rises, rises[1:]):
            between = falls[(falls > r1) & (falls < r2)]
            assert len(between) == 1


class TestAliasingMetricProperties:
    from repro.core.aliasing import (  # noqa: PLC0415
        histogram_overlap,
        range_overlap_fraction,
        separation_gap,
    )

    samples = st.lists(
        st.floats(min_value=-1e-9, max_value=1e-9,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=40,
    )

    @given(a=samples, b=samples)
    @settings(max_examples=60, deadline=None)
    def test_range_overlap_symmetric_and_bounded(self, a, b):
        from repro.core.aliasing import range_overlap_fraction
        a, b = np.array(a), np.array(b)
        o_ab = range_overlap_fraction(a, b)
        o_ba = range_overlap_fraction(b, a)
        assert o_ab == pytest.approx(o_ba)
        assert 0.0 <= o_ab <= 1.0

    @given(a=samples, b=samples)
    @settings(max_examples=60, deadline=None)
    def test_gap_is_negated_overlap_when_overlapping(self, a, b):
        from repro.core.aliasing import (
            range_overlap_fraction,
            separation_gap,
        )
        a, b = np.array(a), np.array(b)
        gap = separation_gap(a, b)
        overlap = range_overlap_fraction(a, b)
        if overlap > 0:
            assert gap == pytest.approx(-overlap)
        else:
            assert gap >= 0.0

    @given(a=samples, shift=st.floats(min_value=0.0, max_value=5e-9))
    @settings(max_examples=60, deadline=None)
    def test_shifting_apart_never_increases_overlap(self, a, shift):
        from repro.core.aliasing import histogram_overlap
        a = np.array(a)
        assume(a.max() - a.min() > 1e-15)
        near = histogram_overlap(a, a + shift)
        far = histogram_overlap(a, a + shift + 3e-9)
        assert far <= near + 0.15  # binning noise tolerance

    @given(a=samples)
    @settings(max_examples=40, deadline=None)
    def test_detection_probability_of_self_is_low(self, a):
        from repro.core.aliasing import detection_probability
        a = np.array(a)
        assert detection_probability(a, a) == 0.0
