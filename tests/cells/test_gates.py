"""Unit tests for the standard-cell library (DC truth tables + behaviour)."""

import numpy as np
import pytest

from repro.cells import CellKit, CELL_AREAS_UM2, TECH_45LP
from repro.spice import Circuit, DC, dc_operating_point, transient, Pulse
from repro.spice.montecarlo import ProcessVariation
from repro.spice.netlist import GROUND

VDD = 1.1


def build(inputs):
    """Circuit with supply + DC input sources; returns (circuit, kit)."""
    c = Circuit()
    c.add_vsource("vdd", "vdd", GROUND, DC(VDD))
    for name, value in inputs.items():
        c.add_vsource(f"v_{name}", name, GROUND, DC(value * VDD))
    return c, CellKit(c)


def logic_level(voltage):
    if voltage > 0.9 * VDD:
        return 1
    if voltage < 0.1 * VDD:
        return 0
    return None


class TestInverter:
    @pytest.mark.parametrize("a,expected", [(0, 1), (1, 0)])
    def test_truth_table(self, a, expected):
        c, kit = build({"a": a})
        kit.inverter("u1", "a", "y")
        assert logic_level(dc_operating_point(c)["y"]) == expected

    def test_strength_scales_widths(self):
        c, kit = build({"a": 0})
        kit.inverter("u1", "a", "y", strength=4.0)
        fet = c.find_mosfet("u1.mn")
        assert fet.w == pytest.approx(TECH_45LP.wn_x1 * 4)


class TestNand2:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0),
    ])
    def test_truth_table(self, a, b, expected):
        c, kit = build({"a": a, "b": b})
        kit.nand2("u1", "a", "b", "y")
        assert logic_level(dc_operating_point(c)["y"]) == expected


class TestNor2:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0),
    ])
    def test_truth_table(self, a, b, expected):
        c, kit = build({"a": a, "b": b})
        kit.nor2("u1", "a", "b", "y")
        assert logic_level(dc_operating_point(c)["y"]) == expected


class TestMux2:
    @pytest.mark.parametrize("a,b,sel,expected", [
        (0, 1, 0, 0), (1, 0, 0, 1), (0, 1, 1, 1), (1, 0, 1, 0),
    ])
    def test_select_table(self, a, b, sel, expected):
        c, kit = build({"a": a, "b": b, "s": sel})
        kit.mux2("u1", "a", "b", "s", "y")
        assert logic_level(dc_operating_point(c)["y"]) == expected

    def test_output_is_buffered(self):
        """The mux output is inverter-driven, not a bare tgate."""
        c, kit = build({"a": 1, "b": 0, "s": 0})
        kit.mux2("u1", "a", "b", "s", "y")
        drivers = [f for f in c.mosfets if f.drain == "y" or f.source == "y"]
        assert any(f.name.startswith("u1.iy") for f in drivers)


class TestBuffer:
    def test_noninverting(self):
        for a in (0, 1):
            c, kit = build({"a": a})
            kit.buffer("u1", "a", "y", strength=4.0)
            assert logic_level(dc_operating_point(c)["y"]) == a

    def test_tapered_first_stage(self):
        c, kit = build({"a": 0})
        kit.buffer("u1", "a", "y", strength=4.0)
        first = c.find_mosfet("u1.i0.mn")
        second = c.find_mosfet("u1.i1.mn")
        assert first.w == pytest.approx(second.w / 2)


class TestTristateBuffer:
    def test_drives_when_enabled(self):
        for a in (0, 1):
            c, kit = build({"a": a, "en": 1})
            kit.tristate_buffer("u1", "a", "en", "y")
            c.add_capacitor("cl", "y", GROUND, 10e-15)
            assert logic_level(dc_operating_point(c)["y"]) == a

    def test_high_z_when_disabled(self):
        c, kit = build({"a": 1, "en": 0})
        kit.tristate_buffer("u1", "a", "en", "y")
        c.add_capacitor("cl", "y", GROUND, 59e-15)
        res = transient(c, 1e-9, 2e-12, ics={"y": 0.4}, record=["y"])
        # The floating output must hold its initial voltage.
        assert abs(res["y"][-1] - 0.4) < 0.02


class TestIoCell:
    def test_forward_path_noninverting(self):
        for a in (0, 1):
            c, kit = build({"a": a, "en": 1})
            kit.io_cell("u1", "a", "en", "pad", "y")
            c.add_capacitor("ctsv", "pad", GROUND, 59e-15)
            op = dc_operating_point(c)
            assert logic_level(op["pad"]) == a
            assert logic_level(op["y"]) == a

    def test_pad_floats_when_disabled(self):
        c, kit = build({"a": 1, "en": 0})
        kit.io_cell("u1", "a", "en", "pad", "y")
        c.add_capacitor("ctsv", "pad", GROUND, 59e-15)
        res = transient(c, 1e-9, 2e-12, ics={"pad": 0.3}, record=["pad"])
        assert abs(res["pad"][-1] - 0.3) < 0.02

    def test_drives_tsv_load_with_realistic_delay(self):
        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(VDD))
        c.add_vsource("v_en", "en", GROUND, DC(VDD))
        c.add_vsource("v_a", "a", GROUND,
                      Pulse(0.0, VDD, delay=100e-12, rise=20e-12,
                            fall=20e-12, width=700e-12))
        kit = CellKit(c)
        kit.io_cell("u1", "a", "en", "pad", "y")
        c.add_capacitor("ctsv", "pad", GROUND, 59e-15)
        res = transient(c, 1.2e-9, 1e-12, record=["a", "y"])
        delay = res.waveform("a").propagation_delay_to(
            res.waveform("y"), VDD / 2
        )
        assert 30e-12 < delay < 400e-12


class TestAreaTracking:
    def test_tracked_cells_and_areas(self):
        c, kit = build({"a": 0, "b": 1, "s": 0})
        kit.inverter("i1", "a", "n1")
        kit.mux2("m1", "a", "b", "s", "n2")
        assert kit.total_cell_area_um2 == pytest.approx(
            CELL_AREAS_UM2["INV_X1"] + CELL_AREAS_UM2["MUX2_X1"]
        )
        assert kit.instances == ["i1", "m1"]

    def test_internal_inverters_not_double_counted(self):
        c, kit = build({"a": 0, "b": 1, "s": 0})
        kit.mux2("m1", "a", "b", "s", "y")
        assert len(kit.instances) == 1


class TestMonteCarloIntegration:
    def test_sample_perturbs_each_transistor_differently(self):
        c = Circuit()
        c.add_vsource("vdd", "vdd", GROUND, DC(VDD))
        c.add_vsource("v_a", "a", GROUND, DC(0.0))
        sample = ProcessVariation().sample(np.random.default_rng(3))
        kit = CellKit(c, sample=sample)
        kit.inverter("i1", "a", "y1")
        kit.inverter("i2", "a", "y2")
        vths = {f.name: f.model.vth for f in c.mosfets}
        assert vths["i1.mn"] != vths["i2.mn"]
