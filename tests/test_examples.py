"""Smoke tests: the shipped examples must run end to end.

The slowest example (the transistor-level oscilloscope) is exercised at
reduced scale through its building blocks elsewhere; here we execute the
fast examples exactly as a user would.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_runs_and_classifies(capsys):
    out = run_example("quickstart.py", capsys)
    assert "pass" in out
    assert "resistive_open" in out
    assert "stuck" in out


@pytest.mark.slow
def test_multivoltage_screen_runs(capsys):
    out = run_example("multivoltage_leakage_screen.py", capsys)
    assert "R_L,stop" in out
    assert "oscillation stops" in out or "ps" in out


def test_production_screening_runs(capsys):
    out = run_example("production_die_screening.py", capsys)
    assert "screening outcome" in out
    assert "DfT budget" in out


def test_group_diagnosis_runs(capsys):
    out = run_example("group_diagnosis.py", capsys)
    assert "total measurements" in out
    assert "[14]" in out  # the injected strong leak is isolated
