"""End-to-end integration tests across package boundaries.

These chains mirror real use: circuit-accurate engines feeding sessions,
the controller quantizing measurements, and the full screening flow --
the same paths the examples and benches take, at reduced scale.
"""

import math

import numpy as np
import pytest

from repro.core.engines import AnalyticEngine, StageDelayEngine
from repro.core.segments import RingOscillatorConfig
from repro.core.session import PrebondTestSession
from repro.core.session import TestDecision as Decision
from repro.core.tsv import Leakage, ResistiveOpen, Tsv
from repro.dft.architecture import DftArchitecture
from repro.dft.control import MeasurementPlan
from repro.dft.control import TestController as Controller
from repro.spice.montecarlo import ProcessVariation
from repro.workloads.flow import ScreeningFlow
from repro.workloads.generator import DefectStatistics, DiePopulation


class TestSessionWithStageEngine:
    """Circuit-accurate classification of the paper's example defects."""

    @pytest.fixture(scope="class")
    def session(self):
        engine = StageDelayEngine(
            config=RingOscillatorConfig(vdd=1.1), timestep=2e-12
        )
        nominal = engine.delta_t(Tsv())
        from repro.core.session import ReferenceBand
        # +-4% band around nominal (a realistic characterized spread).
        band = ReferenceBand(nominal * 0.96, nominal * 1.04)
        return PrebondTestSession(engine, band=band)

    def test_fault_free_passes(self, session):
        assert session.measure(Tsv()).decision is Decision.PASS

    def test_one_kohm_open_detected(self, session):
        outcome = session.measure(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        assert outcome.decision is Decision.RESISTIVE_OPEN

    def test_strong_leak_detected_as_stuck(self, session):
        outcome = session.measure(Tsv(fault=Leakage(200.0)))
        assert outcome.decision is Decision.STUCK


class TestControllerQuantizationChain:
    """True period -> counter -> estimate -> decision, end to end."""

    def test_decision_unchanged_by_quantization(self):
        engine = AnalyticEngine(RingOscillatorConfig(vdd=1.1))
        controller = Controller(
            engine, MeasurementPlan(window=50e-6, counter_bits=18)
        )
        tsvs_faulty = [Tsv(fault=ResistiveOpen(2500.0, 0.3))] + [Tsv()] * 4
        tsvs_clean = [Tsv()] * 5
        dt_faulty = controller.measure_delta_t(tsvs_faulty, under_test=[0])
        dt_clean = controller.measure_delta_t(tsvs_clean, under_test=[0])
        guard = controller.quantization_guard_band(2e-9)
        assert dt_clean - dt_faulty > guard

    def test_guard_band_covers_quantization_noise(self):
        engine = AnalyticEngine(RingOscillatorConfig(vdd=1.1))
        controller = Controller(
            engine, MeasurementPlan(window=10e-6, counter_bits=16),
            phase_seed=3,
        )
        tsvs = [Tsv()] * 5
        true_dt = engine.period(tsvs, [True] + [False] * 4) - engine.period(
            tsvs, [False] * 5
        )
        guard = controller.quantization_guard_band(
            engine.period(tsvs, [True] + [False] * 4)
        )
        for _ in range(20):
            measured = controller.measure_delta_t(tsvs, under_test=[0])
            assert abs(measured - true_dt) <= guard * 1.01


class TestFlowAgainstArchitecture:
    def test_flow_time_consistent_with_architecture_model(self):
        plan = MeasurementPlan(window=5e-6)
        arch = DftArchitecture(num_tsvs=50, group_size=5, plan=plan,
                               voltages=(1.1, 0.75))
        flow = ScreeningFlow(
            "analytic",
            voltages=(1.1, 0.75), plan=plan,
            characterization_samples=40, seed=1,
        )
        stats = DefectStatistics(void_rate=0.0, pinhole_rate=0.0)
        pop = DiePopulation(num_tsvs=50, stats=stats, seed=1)
        metrics = flow.screen_die(pop)
        # A clean die measured with per-TSV isolation at every voltage is
        # the architecture's worst case.
        assert metrics.test_time <= arch.test_time(per_tsv=True) * 1.01

    def test_multivoltage_flow_beats_probe_baseline_on_finite_opens(self):
        """The paper's pitch versus probing: kOhm-scale opens are visible
        to the delay test but not to quasi-static capacitance metering."""
        from repro.baselines import ProbeCapacitanceTest

        tsv = Tsv(fault=ResistiveOpen(2500.0, 0.3))
        probe_p = ProbeCapacitanceTest().detection_probability(tsv)

        engine = AnalyticEngine(RingOscillatorConfig(vdd=1.1))
        ff = engine.delta_t_mc(Tsv(), ProcessVariation(), 60, seed=0)
        faulty = engine.delta_t_mc(tsv, ProcessVariation(), 60, seed=1)
        from repro.core.aliasing import detection_probability
        ours_p = detection_probability(faulty, ff)
        assert ours_p > probe_p + 0.5


class TestCrossEngineScreening:
    def test_analytic_band_classifies_stage_measurement(self):
        """Bands characterized with the fast engine must transfer to the
        accurate engine only with a scale calibration -- this documents
        the calibration step a real deployment needs."""
        stage = StageDelayEngine(config=RingOscillatorConfig(vdd=1.1),
                                 timestep=2e-12)
        analytic = AnalyticEngine(RingOscillatorConfig(vdd=1.1))
        scale = stage.delta_t(Tsv()) / analytic.delta_t(Tsv())
        samples = analytic.delta_t_mc(Tsv(), ProcessVariation(), 60,
                                      seed=2) * scale
        from repro.core.session import ReferenceBand
        band = ReferenceBand.from_samples(samples, guard=5e-12)
        measured = stage.delta_t(Tsv(fault=ResistiveOpen(1500.0, 0.4)))
        assert measured < band.low  # flagged as open
        assert band.contains(stage.delta_t(Tsv()))
