"""Paper-invariant property tests (hypothesis).

These pin the *directions* the paper's argument rests on, at two supply
voltages, independent of absolute picoseconds:

* resistive opens slow the direct path, so DeltaT = T1 - T2 strictly
  *decreases* as the open gets more severe -- larger series R_O, or a
  deeper break (smaller remaining fraction x of the TSV capacitance on
  the driven side);
* leakage in a voltage's sensitivity window (just above the
  oscillation-stop resistance R_L,stop) pushes DeltaT *above* the
  fault-free value, and harder as R_L drops toward the stop (Fig. 8);
* the fault-induced shift vanishes as the fault vanishes (R_O -> 0,
  R_L -> inf), which is what makes the fault-free band a sound
  acceptance region.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.engines.registry import spec as engine_spec
from repro.core.multivoltage import leakage_stop_threshold
from repro.core.tsv import Leakage, ResistiveOpen, Tsv

VOLTAGES = (1.1, 0.8)
FACTORY = engine_spec("analytic")
ENGINES = {v: FACTORY(v) for v in VOLTAGES}
FAULT_FREE = {v: ENGINES[v].delta_t(Tsv()) for v in VOLTAGES}
R_STOP = {v: leakage_stop_threshold(FACTORY, v) for v in VOLTAGES}

COMMON = settings(max_examples=40, deadline=None)


def delta_t(vdd, fault=None):
    return ENGINES[vdd].delta_t(Tsv(fault=fault) if fault else Tsv())


@pytest.mark.parametrize("vdd", VOLTAGES)
class TestResistiveOpenMonotonicity:
    @COMMON
    @given(
        r_low=st.floats(min_value=50.0, max_value=1e4),
        ratio=st.floats(min_value=1.1, max_value=10.0),
        x=st.floats(min_value=0.2, max_value=0.8),
    )
    def test_delta_t_strictly_decreases_with_resistance(
        self, vdd, r_low, ratio, x
    ):
        mild = delta_t(vdd, ResistiveOpen(r_low, x))
        severe = delta_t(vdd, ResistiveOpen(r_low * ratio, x))
        assert severe < mild

    @COMMON
    @given(
        r_open=st.floats(min_value=200.0, max_value=1e4),
        x_deep=st.floats(min_value=0.05, max_value=0.9),
        gap=st.floats(min_value=0.05, max_value=0.5),
    )
    def test_delta_t_strictly_decreases_with_break_depth(
        self, vdd, r_open, x_deep, gap
    ):
        x_shallow = x_deep + gap
        assume(x_shallow <= 0.95)
        deep = delta_t(vdd, ResistiveOpen(r_open, x_deep))
        shallow = delta_t(vdd, ResistiveOpen(r_open, x_shallow))
        assert deep < shallow

    def test_any_open_sits_below_fault_free(self, vdd):
        for r_open in (100.0, 1e3, 1e4):
            assert delta_t(vdd, ResistiveOpen(r_open)) < FAULT_FREE[vdd]


@pytest.mark.parametrize("vdd", VOLTAGES)
class TestLeakageWindowMonotonicity:
    @COMMON
    @given(
        a=st.floats(min_value=1.03, max_value=1.18),
        step=st.floats(min_value=0.02, max_value=0.15),
    )
    def test_delta_t_increases_as_leakage_strengthens(self, vdd, a, step):
        """Within the sensitivity window, smaller R_L -> larger DeltaT."""
        b = a + step
        r_stop = R_STOP[vdd]
        strong = delta_t(vdd, Leakage(a * r_stop))
        weak = delta_t(vdd, Leakage(b * r_stop))
        assert strong > weak

    @COMMON
    @given(ratio=st.floats(min_value=1.03, max_value=1.15))
    def test_window_leakage_exceeds_fault_free(self, vdd, ratio):
        leaky = delta_t(vdd, Leakage(ratio * R_STOP[vdd]))
        assert leaky > FAULT_FREE[vdd]

    def test_below_stop_threshold_oscillation_stops(self, vdd):
        with pytest.raises(RuntimeError):
            value = delta_t(vdd, Leakage(0.5 * R_STOP[vdd]))
            if not math.isfinite(value):
                raise RuntimeError("stuck oscillator reported as non-finite")


@pytest.mark.parametrize("vdd", VOLTAGES)
class TestShiftVanishesWithFault:
    def test_open_shift_vanishes_as_r_open_drops(self, vdd):
        ff = FAULT_FREE[vdd]
        shifts = [
            abs(delta_t(vdd, ResistiveOpen(r_open)) - ff)
            for r_open in (1e3, 1e2, 1e1, 1.0)
        ]
        assert all(a > b for a, b in zip(shifts, shifts[1:]))
        assert shifts[-1] < 1e-3 * ff

    def test_leakage_shift_vanishes_as_r_leak_grows(self, vdd):
        ff = FAULT_FREE[vdd]
        shifts = [
            abs(delta_t(vdd, Leakage(r_leak)) - ff)
            for r_leak in (1e5, 1e6, 1e8, 1e10)
        ]
        assert all(a > b for a, b in zip(shifts, shifts[1:]))
        assert shifts[-1] < 1e-6 * ff
