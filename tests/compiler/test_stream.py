"""Tests for the heterogeneous compiled-scenario request stream."""

import pytest

from repro.compiler import DieSpec, ScenarioStream, compile_die
from repro.workloads.loadgen import ServiceLoadGenerator

SPEC_A = DieSpec(num_tsvs=8, group_size=4, voltages=(1.1, 0.8),
                 label="die-a", population_seed=1)
SPEC_B = DieSpec(num_tsvs=6, group_size=3, voltages=(1.1, 0.8),
                 label="die-b", population_seed=2)


@pytest.fixture(scope="module")
def stream():
    return ScenarioStream([compile_die(SPEC_A), compile_die(SPEC_B)],
                          seed=7)


class TestStream:
    def test_is_a_service_load_generator(self, stream):
        assert isinstance(stream, ServiceLoadGenerator)

    def test_accepts_raw_specs_and_compiles_them(self):
        raw = ScenarioStream([SPEC_A, SPEC_B], seed=7)
        assert [s.label for s in raw.scenarios] == ["die-a", "die-b"]

    def test_needs_at_least_one_scenario(self):
        with pytest.raises(ValueError):
            ScenarioStream([])

    def test_round_robin_interleaving(self, stream):
        reqs = stream.requests(8)
        labels = [r.tags["scenario"] for r in reqs]
        assert labels == ["die-a", "die-b"] * 4

    def test_supply_cycles_fastest_within_a_scenario(self, stream):
        reqs = stream.requests(12)
        die_a = [r for r in reqs if r.tags["scenario"] == "die-a"]
        assert [r.vdd for r in die_a] == [1.1, 0.8] * 3
        # One round of k consecutive requests sits at the same supply
        # position across scenarios -- the family-coalescible ordering.
        assert reqs[0].vdd == reqs[1].vdd == 1.1
        assert reqs[2].vdd == reqs[3].vdd == 0.8

    def test_walks_each_population_in_order(self, stream):
        reqs = stream.requests(2 * 2 * 8)  # full die-a TSV walk
        die_a = [r for r in reqs if r.tags["scenario"] == "die-a"]
        indices = [int(r.tags["tsv_index"]) for r in die_a]
        assert indices == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7]

    def test_stream_is_deterministic_and_seed_sensitive(self):
        a = ScenarioStream([SPEC_A, SPEC_B], seed=7).requests(10)
        b = ScenarioStream([SPEC_A, SPEC_B], seed=7).requests(10)
        c = ScenarioStream([SPEC_A, SPEC_B], seed=8).requests(10)
        assert [r.seed for r in a] == [r.seed for r in b]
        assert [r.seed for r in a] != [r.seed for r in c]
        assert len({r.seed for r in a}) == len(a)

    def test_variation_defaults_to_first_scenario(self, stream):
        assert stream.variation is SPEC_A.variation
        for req in stream.requests(4):
            assert req.variation is SPEC_A.variation

    def test_load_model_plumbing_uses_first_scenario(self, stream):
        assert stream.voltages == (1.1, 0.8)
        assert len(stream.population.records) == SPEC_A.num_tsvs
