"""Tests for the design-space sweep and its Pareto frontier."""

import pytest

from repro.compiler import DieSpec, sweep

BASE = DieSpec(num_tsvs=24, voltages=(1.1, 0.7), window=5e-6,
               counter_bits=13)


class TestGrid:
    def test_grid_is_the_cartesian_product(self):
        result = sweep(BASE, {
            "group_size": (2, 4, 6),
            "measurement": ("counter", "lfsr"),
        })
        assert len(result) == 6
        assert all(v.ok for v in result.variants)
        # Axes enumerate in sorted-name order: group_size before
        # measurement, so the measurement axis cycles fastest.
        kinds = [v.overrides["measurement"] for v in result.variants]
        assert kinds == ["counter", "lfsr"] * 3
        sizes = [v.overrides["group_size"] for v in result.variants]
        assert sizes == [2, 2, 4, 4, 6, 6]

    def test_sweep_is_deterministic(self):
        axes = {"group_size": (2, 4), "measurement": ("counter", "lfsr")}
        first = sweep(BASE, axes)
        second = sweep(BASE, axes)
        assert first.as_rows() == second.as_rows()

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep(BASE, {})

    def test_failed_variants_are_kept_with_fields(self):
        result = sweep(BASE, {
            "group_size": (2, 4),
            "window": (5e-6, 1e-10),  # 1e-10 < any period: infeasible
        })
        assert len(result) == 4
        assert len(result.compiled) == 2
        assert len(result.failed) == 2
        for variant in result.failed:
            assert variant.overrides["window"] == 1e-10
            assert "window" in variant.error_fields
            assert variant.error
            assert not variant.ok

    def test_variant_rows_carry_price_or_error(self):
        result = sweep(BASE, {"window": (5e-6, 1e-10)})
        ok_row = next(r for r in result.as_rows() if r["ok"])
        bad_row = next(r for r in result.as_rows() if not r["ok"])
        assert "total_area_um2" in ok_row
        assert "error_fields" in bad_row


class TestPareto:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep(BASE, {
            "group_size": (1, 2, 3, 4, 6),
            "measurement": ("counter", "lfsr"),
        })

    def test_frontier_is_nonempty_and_compiled(self, result):
        frontier = result.pareto_frontier()
        assert frontier
        assert all(v.ok for v in frontier)

    def test_frontier_axes_are_monotone(self, result):
        """Fig. 10 shape: cheaper area always costs resolution."""
        frontier = result.pareto_frontier()
        areas = [v.compiled.price.area_fraction for v in frontier]
        resolutions = [
            v.compiled.price.delta_t_resolution_s for v in frontier
        ]
        assert areas == sorted(areas)
        assert resolutions == sorted(resolutions, reverse=True)
        assert len(set(resolutions)) == len(resolutions)

    def test_frontier_members_are_non_dominated(self, result):
        frontier = result.pareto_frontier()
        for member in frontier:
            mp = member.compiled.price
            for other in result.compiled:
                op = other.compiled.price
                dominates = (
                    op.area_fraction <= mp.area_fraction
                    and op.delta_t_resolution_s < mp.delta_t_resolution_s
                ) or (
                    op.area_fraction < mp.area_fraction
                    and op.delta_t_resolution_s <= mp.delta_t_resolution_s
                )
                assert not dominates

    def test_json_payload_shape(self, result):
        payload = result.as_json_dict()
        assert payload["num_tsvs"] == BASE.num_tsvs
        assert payload["grid_points"] == len(result)
        assert payload["compiled"] + payload["failed"] == len(result)
        assert len(payload["variants"]) == len(result)
        assert len(payload["pareto"]) == len(result.pareto_frontier())
