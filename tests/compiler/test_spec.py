"""Unit tests for the declarative die spec and its validation."""

import pickle

import pytest

from repro.analysis.diagnostics import SpecError
from repro.compiler import AUTO, DieSpec
from repro.core.engines.registry import EngineSpec, spec as engine_spec
from repro.core.tsv import TsvParameters


class TestValidation:
    def test_valid_default_spec(self):
        spec = DieSpec(num_tsvs=100)
        assert spec.group_size == AUTO
        assert spec.voltages == AUTO

    def test_invalid_fields_are_named(self):
        with pytest.raises(SpecError) as info:
            DieSpec(num_tsvs=0, corner="cosmic", measurement="abacus")
        assert set(info.value.fields) == {
            "num_tsvs", "corner", "measurement"
        }

    def test_spec_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            DieSpec(num_tsvs=-1)

    @pytest.mark.parametrize("changes", [
        {"group_size": 0},
        {"group_size": "five"},
        {"max_group_size": 0},
        {"window": -1.0},
        {"window": "later"},
        {"max_period_error": 0.0},
        {"counter_bits": 0},
        {"counter_bits": "wide"},
        {"shift_clock_hz": 0.0},
        {"config_cycles": -1},
        {"voltages": ()},
        {"voltages": (1.1, -0.8)},
        {"voltages": "pick"},
        {"supply_candidates": ()},
        {"max_supplies": 0},
        {"leakage_coverage_ohm": (0.0, 100.0)},
        {"leakage_coverage_ohm": (200.0, 100.0)},
        {"die_area_mm2": 0.0},
        {"max_area_fraction": 0.0},
        {"characterization_samples": 0},
        {"fidelity": "mixed"},
        {"verify_groups": "some"},
    ])
    def test_each_bad_field_rejected(self, changes):
        with pytest.raises(SpecError) as info:
            DieSpec(num_tsvs=10, **changes)
        (fld,) = changes
        assert fld in info.value.fields

    def test_lfsr_width_must_have_taps(self):
        with pytest.raises(SpecError) as info:
            DieSpec(num_tsvs=10, measurement="lfsr", counter_bits=30)
        assert "counter_bits" in info.value.fields
        # The same width is fine for a binary counter.
        DieSpec(num_tsvs=10, measurement="counter", counter_bits=30)

    def test_engine_must_be_picklable_recipe(self):
        with pytest.raises(SpecError) as info:
            DieSpec(num_tsvs=10, engine=lambda vdd: None)
        assert info.value.fields == ["engine"]
        DieSpec(num_tsvs=10, engine=engine_spec("analytic"))


class TestDerivedHelpers:
    def test_with_replaces_fields(self):
        base = DieSpec(num_tsvs=100)
        variant = base.with_(group_size=4, measurement="lfsr",
                             counter_bits=12)
        assert variant.group_size == 4
        assert variant.use_lfsr
        assert base.group_size == AUTO  # base untouched

    def test_with_revalidates(self):
        base = DieSpec(num_tsvs=100)
        with pytest.raises(SpecError):
            base.with_(group_size=-2)

    def test_corner_scales_capacitance(self):
        base = DieSpec(num_tsvs=10, tsv=TsvParameters(capacitance=60e-15))
        assert base.effective_tsv().capacitance == 60e-15
        fast = base.with_(corner="fast")
        slow = base.with_(corner="slow")
        assert fast.effective_tsv().capacitance == pytest.approx(54e-15)
        assert slow.effective_tsv().capacitance == pytest.approx(66e-15)
        # The typical corner returns the very same object (bit-identity
        # of every downstream derivation).
        assert base.effective_tsv() is base.tsv

    def test_engine_factory_is_a_spec(self):
        factory = DieSpec(num_tsvs=10).engine_factory()
        assert isinstance(factory, EngineSpec)
        assert factory.name == "analytic"

    def test_spec_is_picklable_and_comparable(self):
        spec = DieSpec(num_tsvs=64, label="pickle-me")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.label == "pickle-me"

    def test_describe_mentions_label(self):
        text = DieSpec(num_tsvs=64, label="prod-die").describe()
        assert "prod-die" in text
