"""A compiled flow must be bit-identical to a hand-built one.

The compiler's promise is that it adds *no* behavior: compiling the
production example's configuration and running the resulting flow gives
exactly the same ``FlowMetrics`` -- every escape, every measurement
count -- as building ``ScreeningFlow`` and ``DiePopulation`` by hand the
way ``examples/production_die_screening.py`` does.
"""

import pytest

from repro.cascade import CascadeConfig
from repro.compiler import DieSpec, compile_die
from repro.core.engines import registry as engine_registry
from repro.spice.montecarlo import ProcessVariation
from repro.workloads.flow import ScreeningFlow
from repro.workloads.generator import DefectStatistics, DiePopulation

PRODUCTION_STATS = DefectStatistics(
    void_rate=0.015, pinhole_rate=0.015, full_open_fraction=0.15
)


def _parity_pair(num_tsvs, samples):
    """(compiled metrics, hand-built metrics) for one configuration."""
    spec = DieSpec(
        num_tsvs=num_tsvs,
        group_size=5,
        window=5e-6,
        counter_bits=10,
        voltages=(1.1, 0.95, 0.8, 0.75, 0.70),
        defects=PRODUCTION_STATS,
        population_seed=42,
        flow_seed=7,
        characterization_samples=samples,
    )
    compiled = compile_die(spec)
    hand_flow = ScreeningFlow(
        engine_registry.spec("analytic"),
        voltages=(1.1, 0.95, 0.8, 0.75, 0.70),
        variation=ProcessVariation(),
        characterization_samples=samples,
        seed=7,
    )
    hand_population = DiePopulation(
        num_tsvs=num_tsvs, stats=PRODUCTION_STATS, seed=42
    )
    return (
        compiled.flow().screen_die(compiled.population()),
        hand_flow.screen_die(hand_population),
    )


class TestParity:
    def test_small_die_metrics_are_bit_identical(self):
        compiled, hand = _parity_pair(num_tsvs=100, samples=40)
        assert compiled == hand
        assert compiled.measurements == hand.measurements
        assert compiled.test_time == hand.test_time

    @pytest.mark.slow
    def test_production_example_metrics_are_bit_identical(self):
        """The acceptance configuration: 1000 TSVs, 5 supplies."""
        compiled, hand = _parity_pair(num_tsvs=1000, samples=150)
        assert compiled == hand
        assert compiled.true_faulty == 27
        assert compiled.detected == 14
        assert compiled.measurements == 5856

    @pytest.mark.slow
    def test_cascade_fidelity_parity(self):
        """``fidelity="cascade"`` rides the same parity guarantee.

        The coarse stagedelay escalation and deterministic measurement
        mode mirror ``tests/cascade/conftest.py`` -- the top-stage
        characterization is the multi-second part; the solve cache makes
        the second (hand-built) screen nearly free.
        """
        config = CascadeConfig(
            escalation=(engine_registry.spec("stagedelay",
                                             timestep=8e-12),),
            stage_characterization_samples=16,
        )
        spec = DieSpec(
            num_tsvs=20,
            group_size=5,
            window=5e-6,
            counter_bits=10,
            voltages=(1.1, 0.8),
            defects=PRODUCTION_STATS,
            population_seed=42,
            flow_seed=7,
            characterization_samples=20,
            fidelity="cascade",
        )
        compiled = compile_die(spec)
        hand = ScreeningFlow(
            engine_registry.spec("analytic"),
            voltages=(1.1, 0.8),
            variation=ProcessVariation(),
            characterization_samples=20,
            seed=7,
            cascade=config,
            preflight=False,
            measurement_variation=None,
        )
        population = DiePopulation(
            num_tsvs=20, stats=PRODUCTION_STATS, seed=42
        )
        compiled_metrics = compiled.flow(
            cascade=config, preflight=False, measurement_variation=None
        ).screen_die(compiled.population())
        assert compiled_metrics == hand.screen_die(population)
        assert compiled_metrics.escalated > 0
