"""Property tests for the die compiler (structure, price, diagnostics)."""

import math

import pytest

from repro.compiler import CompileError, DieSpec, compile_die
from repro.core.area import DftAreaModel
from repro.dft.counter import required_counter_bits, required_window

# Specs chosen to cover even groups, a ragged final group, N = 1, and an
# LFSR measurement block.  Explicit voltages keep each compile to two
# leakage-window characterizations (memoized across the session anyway).
PROPERTY_SPECS = [
    DieSpec(num_tsvs=40, group_size=4, voltages=(1.1, 0.8)),
    DieSpec(num_tsvs=23, group_size=5, voltages=(1.1, 0.7)),
    DieSpec(num_tsvs=9, group_size=1, voltages=(1.1,)),
    DieSpec(num_tsvs=30, group_size=6, measurement="lfsr",
            voltages=(1.1, 0.8, 0.7)),
]


def _mux_instances(circuit, tag):
    """Distinct MUX2 instances whose hierarchical name contains ``tag``."""
    return {
        m.name.rsplit(".", 2)[0]
        for m in circuit.mosfets
        if f".{tag}." in m.name or m.name.startswith(f"{tag}.")
    }


@pytest.fixture(scope="module", params=range(len(PROPERTY_SPECS)))
def compiled(request):
    return compile_die(PROPERTY_SPECS[request.param])


class TestStructuralProperties:
    def test_area_model_charges_two_muxes_per_tsv(self, compiled):
        model = compiled.architecture.area_model()
        assert model.muxes_per_tsv == 2
        assert (model.muxes_per_tsv * model.num_tsvs
                == 2 * compiled.spec.num_tsvs)

    def test_netlist_mux_count_matches_tsvs(self, compiled):
        """Every TSV gets one bypass mux; every group one TE mux."""
        netlists = compiled.group_netlists(
            voltages=(compiled.voltages[0],), unique=False
        )
        bypass = sum(
            len(_mux_instances(n.oscillator.circuit, "bymux"))
            for n in netlists
        )
        test_enable = sum(
            len(_mux_instances(n.oscillator.circuit, "te_mux"))
            for n in netlists
        )
        assert bypass == compiled.spec.num_tsvs
        assert test_enable == compiled.architecture.num_groups

    def test_one_shared_inverter_per_group(self, compiled):
        netlists = compiled.group_netlists(
            voltages=(compiled.voltages[0],), unique=False
        )
        assert len(netlists) == compiled.architecture.num_groups
        for netlist in netlists:
            loop_inv = {
                m.name for m in netlist.oscillator.circuit.mosfets
                if m.name.startswith("loop_inv.")
            }
            assert loop_inv == {"loop_inv.mp", "loop_inv.mn"}

    def test_decoder_bits_cover_the_groups(self, compiled):
        groups = compiled.architecture.num_groups
        assert compiled.architecture.decoder_select_bits == max(
            1, math.ceil(math.log2(max(groups, 2)))
        )

    def test_group_sizes_partition_the_die(self, compiled):
        netlists = compiled.group_netlists(
            voltages=(compiled.voltages[0],), unique=False
        )
        assert sum(n.size for n in netlists) == compiled.spec.num_tsvs
        covered = sorted(i for n in netlists for i in n.tsv_ids)
        assert covered == list(range(compiled.spec.num_tsvs))

    def test_preflight_is_clean(self, compiled):
        assert not compiled.preflight.has_errors
        assert compiled.verified_circuits > 0

    def test_price_area_is_bit_identical_to_hand_built_model(self, compiled):
        hand = DftAreaModel(
            num_tsvs=compiled.spec.num_tsvs,
            group_size=compiled.architecture.group_size,
        )
        assert compiled.price.total_area_um2 == hand.total_area_um2(
            counter_bits=compiled.plan.counter_bits,
            use_lfsr=compiled.spec.use_lfsr,
        )
        assert compiled.price.area_fraction == hand.fraction_of_die(
            compiled.spec.die_area_mm2,
            counter_bits=compiled.plan.counter_bits,
            use_lfsr=compiled.spec.use_lfsr,
        )

    def test_price_measurements_span_all_supplies(self, compiled):
        arch = compiled.architecture
        assert compiled.price.measurements == (
            len(compiled.voltages) * arch.total_measurements(per_tsv=True)
        )
        assert compiled.price.num_supplies == len(compiled.voltages)
        assert compiled.price.test_time_s > 0

    def test_resolution_follows_the_counting_bound(self, compiled):
        t_max = compiled.longest_period_s
        window = compiled.plan.window
        e_plus = t_max * t_max / (window - t_max)
        assert compiled.price.delta_t_resolution_s == pytest.approx(
            2.0 * e_plus, rel=1e-12
        )


class TestAutoResolution:
    @pytest.fixture(scope="class")
    def auto(self):
        return compile_die(DieSpec(num_tsvs=50))

    def test_auto_supplies_bracket_the_coverage(self, auto):
        spec = auto.spec
        assert auto.voltages[0] == max(spec.supply_candidates)
        assert len(auto.voltages) <= spec.max_supplies
        assert auto.voltages == tuple(sorted(auto.voltages, reverse=True))
        # The lowest chosen supply's window must reach the requested
        # coverage ceiling -- that is what it was chosen for.
        lowest = auto.voltage_plan.entries[-1]
        assert lowest.vdd == min(auto.voltages)
        assert lowest.r_max_detectable >= spec.leakage_coverage_ohm[1]

    def test_auto_window_from_quantization_bound(self, auto):
        assert auto.plan.window == required_window(
            auto.longest_period_s, auto.spec.max_period_error
        )
        assert auto.plan.counter_bits == required_counter_bits(
            auto.shortest_period_s, auto.plan.window
        )

    def test_auto_group_size_is_largest_fitting(self, auto):
        n = auto.architecture.group_size
        assert n == auto.spec.max_group_size
        assert auto.price.area_fraction <= auto.spec.max_area_fraction

    def test_explicit_values_are_honored(self):
        compiled = compile_die(DieSpec(
            num_tsvs=20, group_size=5, window=5e-6, counter_bits=10,
            voltages=(1.1, 0.7),
        ))
        assert compiled.architecture.group_size == 5
        assert compiled.plan.window == 5e-6
        assert compiled.plan.counter_bits == 10
        assert compiled.voltages == (1.1, 0.7)


class TestArtifacts:
    @pytest.fixture(scope="class")
    def small(self):
        return compile_die(
            DieSpec(num_tsvs=12, group_size=4, voltages=(1.1, 0.8),
                    label="artifact-die")
        )

    def test_population_is_cached_and_seed_addressable(self, small):
        default = small.population()
        assert default is small.population()
        assert len(default.records) == small.spec.num_tsvs
        other = small.population(seed=99)
        assert other is not default

    def test_wafer_matches_the_spec(self, small):
        wafer = small.wafer(num_dies=3, seed=1)
        assert wafer.num_dies == 3
        assert wafer.tsvs_per_die == small.spec.num_tsvs

    def test_flow_overrides_pass_through(self, small):
        flow = small.flow(fidelity="cascade")
        assert flow.fidelity == "cascade"

    def test_label_and_summary(self, small):
        assert small.label == "artifact-die"
        summary = small.summary()
        assert summary["total_area_um2"] == small.price.total_area_um2
        assert summary["longest_period_s"] == small.longest_period_s

    def test_verify_scope_none_skips_circuit_checks(self):
        compiled = compile_die(DieSpec(
            num_tsvs=12, group_size=4, voltages=(1.1,),
            verify_groups="none",
        ))
        assert compiled.verified_circuits == 0
        assert not compiled.preflight.has_errors

    def test_verify_scope_all_checks_every_group_every_supply(self):
        compiled = compile_die(DieSpec(
            num_tsvs=12, group_size=4, voltages=(1.1, 0.8),
            verify_groups="all",
        ))
        assert compiled.verified_circuits == 3 * 2


class TestCompileFailures:
    def test_uncoverable_leakage_names_the_fields(self):
        with pytest.raises(CompileError) as info:
            compile_die(DieSpec(
                num_tsvs=10, leakage_coverage_ohm=(500.0, 50_000.0)
            ))
        assert "leakage_coverage_ohm" in info.value.fields
        assert "supply_candidates" in info.value.fields

    def test_unfit_area_budget_names_the_field(self):
        with pytest.raises(CompileError) as info:
            compile_die(DieSpec(
                num_tsvs=10, voltages=(1.1,), max_area_fraction=1e-9
            ))
        assert "max_area_fraction" in info.value.fields

    def test_pinned_group_size_over_budget_is_blamed_too(self):
        with pytest.raises(CompileError) as info:
            compile_die(DieSpec(
                num_tsvs=10, group_size=2, voltages=(1.1,),
                max_area_fraction=1e-9,
            ))
        assert set(info.value.fields) >= {"max_area_fraction", "group_size"}

    def test_too_small_window_names_the_field(self):
        with pytest.raises(CompileError) as info:
            compile_die(DieSpec(
                num_tsvs=10, group_size=5, voltages=(1.1, 0.7),
                window=1e-10,
            ))
        assert info.value.fields == ["window"]

    def test_compile_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            compile_die(DieSpec(
                num_tsvs=10, leakage_coverage_ohm=(500.0, 50_000.0)
            ))
