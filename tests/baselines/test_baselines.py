"""Unit tests for the prior-work baseline models."""

import math

import pytest

from repro.baselines import (
    ChargeSharingTest,
    ProbeCapacitanceTest,
    SingleTsvRingOscillatorTest,
)
from repro.core.tsv import Leakage, ResistiveOpen, Tsv


class TestProbeCapacitance:
    @pytest.fixture(scope="class")
    def probe(self):
        return ProbeCapacitanceTest()

    def test_full_open_hides_top_capacitance(self, probe):
        tsv = Tsv(fault=ResistiveOpen(math.inf, 0.6))
        c_seen = probe.observable_capacitance(tsv)
        assert c_seen == pytest.approx(0.4 * 59e-15)

    def test_finite_open_nearly_invisible(self, probe):
        """Key contrast with the paper's method: a quasi-static C meter
        cannot see a kOhm-scale open -- the far segment still charges."""
        tsv = Tsv(fault=ResistiveOpen(1000.0, 0.5))
        c_seen = probe.observable_capacitance(tsv)
        assert c_seen == pytest.approx(59e-15, rel=0.02)

    def test_detects_full_open_reliably(self, probe):
        p = probe.detection_probability(Tsv(fault=ResistiveOpen(math.inf, 0.6)))
        assert p > 0.9

    def test_misses_finite_open(self, probe):
        p = probe.detection_probability(Tsv(fault=ResistiveOpen(1000.0, 0.5)))
        assert p < 0.2

    def test_detects_leakage_via_dc_current(self, probe):
        assert probe.detection_probability(Tsv(fault=Leakage(2000.0))) == 1.0

    def test_false_positive_rate_small(self, probe):
        assert probe.detection_probability(Tsv()) < 0.01

    def test_parallel_measurement_degrades_resolution(self):
        tsv = Tsv(fault=ResistiveOpen(math.inf, 0.9))
        alone = ProbeCapacitanceTest(tsvs_per_touchdown=1)
        grouped = ProbeCapacitanceTest(tsvs_per_touchdown=20)
        assert alone.detection_probability(tsv) >= grouped.detection_probability(tsv)

    def test_costs(self, probe):
        assert probe.touchdowns_for(1000) == 200
        assert probe.expected_damaged_tsvs(10000) == pytest.approx(1.0)
        assert probe.requires_wafer_thinning()
        assert probe.test_time(1000) > 0


class TestChargeSharing:
    @pytest.fixture(scope="class")
    def cs(self):
        return ChargeSharingTest()

    def test_shared_voltage_is_capacitive_divider(self, cs):
        v = cs.nominal_shared_voltage(Tsv())
        assert v == pytest.approx(1.1 / 5.0)

    def test_leakage_decays_precharge(self, cs):
        v_ff = cs.shared_voltage(Tsv())
        v_leak = cs.shared_voltage(Tsv(fault=Leakage(1000.0)))
        assert v_leak < v_ff

    def test_full_open_reduces_effective_cap(self, cs):
        v_ff = cs.shared_voltage(Tsv())
        v_open = cs.shared_voltage(Tsv(fault=ResistiveOpen(math.inf, 0.5)))
        assert v_open < v_ff

    def test_detects_strong_leak(self, cs):
        assert cs.detection_probability(Tsv(fault=Leakage(500.0))) > 0.9

    def test_offset_susceptibility(self):
        """The paper's criticism: sense-amp offset masks small changes."""
        tsv = Tsv(fault=ResistiveOpen(math.inf, 0.9))  # only 10% cap change
        precise = ChargeSharingTest(sense_offset_sigma=0.002)
        sloppy = ChargeSharingTest(sense_offset_sigma=0.030)
        assert precise.detection_probability(tsv) > sloppy.detection_probability(tsv)

    def test_needs_custom_analog(self, cs):
        assert cs.requires_custom_analog()
        assert cs.area_per_sense_amp_um2() > 0


class TestSingleTsvRo:
    @pytest.fixture(scope="class")
    def huang(self):
        return SingleTsvRingOscillatorTest(num_characterization_samples=60)

    def test_forces_single_segment(self):
        from repro.core.segments import RingOscillatorConfig
        test = SingleTsvRingOscillatorTest(
            config=RingOscillatorConfig(num_segments=5)
        )
        assert test.config.num_segments == 1

    def test_detects_large_open(self, huang):
        p = huang.detection_probability(
            Tsv(fault=ResistiveOpen(3000.0, 0.3)), num_trials=100
        )
        assert p > 0.8

    def test_low_false_positive(self, huang):
        assert huang.detection_probability(Tsv(), num_trials=100) < 0.2

    def test_area_scales_linearly_without_sharing(self, huang):
        assert huang.dft_area_um2(1000) == pytest.approx(
            1000 * huang.custom_cell_area_um2
        )

    def test_custom_cells_cost_more_than_shared_muxes(self, huang):
        """The paper's structural advantage over [14]: per TSV, two
        muxes + a shared inverter beat a dedicated oscillator."""
        from repro.core.area import DftAreaModel
        ours = DftAreaModel(num_tsvs=1000, group_size=5).oscillator_area_um2
        theirs = huang.dft_area_um2(1000)
        assert ours < theirs

    def test_test_time_linear(self, huang):
        assert huang.test_time(200) == pytest.approx(2 * huang.test_time(100))
